//! The fleet-equivalence property: a [`ShardManager`] fleet driven through
//! a partitioned random edit history answers, after **every** step, every
//! `points_to` and `alias` query identically to one unsharded [`Session`]
//! fed the same script — and each shard's observables (stats, census,
//! least-solution buffers) stay byte-identical to a reference session fed
//! only that shard's canonical subsequence, at every thread count.
//!
//! Scripts are generated with `partitions = 4`, so the same script routes
//! cleanly over S ∈ {1, 2, 4} shards (ownership is modular:
//! `v mod S = (v mod 4) mod S` whenever `S` divides 4). The matrix covers
//! all three solution-set backends and worker counts 1/2/4/8 — none of
//! which may change a single observable.
//!
//! The tail of every check publishes the fleet into a [`SnapshotHub`] and
//! replays the queries against the lock-free [`HubView`], pinning the
//! serving layer to the same answers as a single-session snapshot.

use bane_core::prelude::*;
use bane_serve::{Delta, GroupId, Session, SessionBuilder, ShardManager};
use bane_snap::{QueryIndex, ShardRoute, SnapshotHub};
use bane_synth::delta::{
    generate_delta_script, DeltaScript, DeltaScriptConfig, DeltaStep, ScriptBindings,
};
use proptest::prelude::*;

const SHARDS: [usize; 3] = [1, 2, 4];
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The shard owning a resolved constraint group: the owner of any of its
/// variables (the generator confines each group to one partition class).
fn owner_of(route: ShardRoute, cs: &[(SetExpr, SetExpr)]) -> usize {
    for &(lhs, rhs) in cs {
        for e in [lhs, rhs] {
            if let SetExpr::Var(v) = e {
                return route.owner(v);
            }
        }
    }
    0
}

/// Whether two sorted term-id slices intersect.
fn intersects(a: &[TermId], b: &[TermId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Drives `script` through an `shards`-wide fleet, an unsharded session,
/// and per-shard reference sessions, checking equivalence at every step
/// and hub-served equivalence at the end.
fn check_fleet(script: &DeltaScript, kind: SolSetKind, threads: usize, shards: usize) {
    assert_eq!(script.partitions as usize % shards, 0, "S must divide the partition count");
    let builder =
        SessionBuilder::new().config(SolverConfig::if_online().with_solset(kind)).threads(threads);
    let mut fleet = ShardManager::new(&builder, shards);
    let mut single = builder.build();
    let mut refs: Vec<Session> = (0..shards).map(|_| builder.build()).collect();
    let route = fleet.route();

    // Registrations fan out identically, so one binding set describes all
    // three rigs (the fleet's ConstraintBuilder impl asserts alignment).
    let mut bind = ScriptBindings::bind(&mut fleet, script);
    ScriptBindings::bind(&mut single, script);
    for r in &mut refs {
        ScriptBindings::bind(r, script);
    }

    // Script slot → group id in each rig (the fleet's ids are fleet-scoped,
    // the reference's are local to the owning shard).
    let mut fleet_slots: Vec<GroupId> = Vec::new();
    let mut single_slots: Vec<GroupId> = Vec::new();
    let mut ref_slots: Vec<(usize, GroupId)> = Vec::new();
    // Shards that have applied at least one delta (`least_solution` is
    // only defined after the first apply).
    let mut applied = vec![false; shards];

    for (i, step) in script.steps.iter().enumerate() {
        let mut fd = Delta::new();
        let mut sd = Delta::new();
        let mut rds: Vec<Delta> = (0..shards).map(|_| Delta::new()).collect();
        let mut nonmonotone = false;
        let mut new_owner = None;
        match step {
            DeltaStep::GrowVars(n) => {
                fd.add_vars(*n);
                sd.add_vars(*n);
                for rd in &mut rds {
                    rd.add_vars(*n);
                }
                let base = bind.vars.len();
                bind.vars.extend((0..*n as usize).map(|k| Var::new(base + k)));
            }
            DeltaStep::AddGroup(cs) => {
                let cs = bind.constraints(cs);
                let owner = owner_of(route, &cs);
                fd.add_group(cs.clone());
                sd.add_group(cs.clone());
                rds[owner].add_group(cs);
                new_owner = Some(owner);
            }
            DeltaStep::EditGroup { slot, constraints } => {
                let cs = bind.constraints(constraints);
                fd.edit_group(fleet_slots[*slot], cs.clone());
                sd.edit_group(single_slots[*slot], cs.clone());
                let (owner, local) = ref_slots[*slot];
                rds[owner].edit_group(local, cs);
                nonmonotone = true;
            }
            DeltaStep::RemoveGroup { slot } => {
                fd.remove_group(fleet_slots[*slot]);
                sd.remove_group(single_slots[*slot]);
                let (owner, local) = ref_slots[*slot];
                rds[owner].remove_group(local);
                nonmonotone = true;
            }
        }

        let freport = fleet.apply(fd).unwrap_or_else(|e| {
            panic!("step {i} ({kind:?}, {shards} shards): fleet rejected a partitioned script: {e}")
        });
        let sreport = single.apply(sd);
        assert_eq!(freport.monotone, sreport.monotone, "step {i}: path classification");
        assert_eq!(freport.monotone, !nonmonotone, "step {i}: monotonicity");
        let mut ref_reports = Vec::with_capacity(shards);
        for (k, rd) in rds.into_iter().enumerate() {
            ref_reports.push((!rd.is_empty()).then(|| refs[k].apply(rd)));
        }
        if let Some(owner) = new_owner {
            assert_eq!(freport.new_groups.len(), 1, "step {i}: one group per AddGroup");
            fleet_slots.push(freport.new_groups[0]);
            single_slots.push(sreport.new_groups[0]);
            let rr = ref_reports[owner].as_ref().expect("owner shard applied");
            ref_slots.push((owner, rr.new_groups[0]));
            assert_eq!(fleet.owner_of_group(freport.new_groups[0]), Some(owner));
        }
        // The router must have touched exactly the shards the references
        // did.
        for (k, rr) in ref_reports.iter().enumerate() {
            assert_eq!(
                freport.shard_reports[k].is_some(),
                rr.is_some(),
                "step {i}: shard {k} touched-set diverged"
            );
        }

        // (1) Global answers: every variable's set matches the unsharded
        // session's; sampled pairs agree on alias.
        for &v in &bind.vars {
            assert_eq!(
                fleet.points_to(v),
                single.points_to(v).to_vec().as_slice(),
                "step {i} ({kind:?}, {threads} threads, {shards} shards): set of {v:?} diverged"
            );
        }
        for pair in bind.vars.windows(2).step_by(3) {
            let (a, b) = (pair[0], pair[1]);
            let sa = single.points_to(a).to_vec();
            let expect = intersects(&sa, single.points_to(b));
            assert_eq!(fleet.alias(a, b), expect, "step {i}: alias({a:?},{b:?}) diverged");
        }

        // (2) Per-shard byte identity: each shard against a session fed
        // only that shard's canonical subsequence.
        for k in 0..shards {
            applied[k] |= freport.shard_reports[k].is_some();
            assert_eq!(fleet.session(k).stats(), refs[k].stats(), "step {i}: shard {k} stats");
            assert_eq!(fleet.session(k).census(), refs[k].census(), "step {i}: shard {k} census");
            if applied[k] {
                assert_eq!(
                    fleet.session(k).least_solution(),
                    refs[k].least_solution(),
                    "step {i}: shard {k} least-solution bytes"
                );
            }
        }
    }

    // (3) The published fleet serves the same answers as a single-session
    // snapshot, through the lock-free hub view.
    let dir = std::env::temp_dir().join(format!(
        "bane-fleet-eq-{}-{kind:?}-{threads}t-{shards}s",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let hub = SnapshotHub::new(shards);
    fleet.publish_all(&dir, &hub).expect("fleet publishes");
    let view = hub.view();
    assert!(view.complete());
    let single_path = dir.join("single.snap");
    single.publish_snapshot(&single_path).expect("single publishes");
    let sidx = QueryIndex::load(&single_path).expect("single snapshot loads");
    for &v in &bind.vars {
        assert_eq!(view.points_to(v), sidx.points_to(v), "hub points_to({v:?})");
        assert_eq!(
            view.reachable_sources(v),
            sidx.reachable_sources(v),
            "hub reachable_sources({v:?})"
        );
    }
    for pair in bind.vars.windows(2).step_by(3) {
        assert_eq!(
            view.alias(pair[0], pair[1]),
            sidx.alias(pair[0], pair[1]),
            "hub alias({:?},{:?})",
            pair[0],
            pair[1]
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random partitioned scripts, every backend, every shard width.
    #[test]
    fn fleet_equals_unsharded(seed in 0u64..1_000_000, steps in 6usize..18) {
        let script = generate_delta_script(&DeltaScriptConfig::sharded(steps, seed, 4));
        script.validate().expect("generated script validates");
        for kind in SolSetKind::ALL {
            for shards in SHARDS {
                check_fleet(&script, kind, 2, shards);
            }
        }
    }
}

/// A fixed long adversarial script across the full backend × shard matrix,
/// pinned outside proptest so it always runs.
#[test]
fn long_partitioned_script_all_backends_all_widths() {
    let script = generate_delta_script(&DeltaScriptConfig::sharded(36, 0xf1ee7, 4));
    script.validate().expect("script validates");
    assert!(script.has_nonmonotone(), "long script must exercise replay");
    for kind in SolSetKind::ALL {
        for shards in SHARDS {
            check_fleet(&script, kind, 4, shards);
        }
    }
}

/// Worker count is invisible: the same script at every thread count, on a
/// 2- and 4-shard fleet (the per-shard byte-identity asserts inside
/// `check_fleet` are the teeth).
#[test]
fn thread_matrix_changes_nothing() {
    let script = generate_delta_script(&DeltaScriptConfig::sharded(24, 0xba9e, 4));
    script.validate().expect("script validates");
    for threads in THREADS {
        check_fleet(&script, SolSetKind::SortedSpan, threads, 2);
        check_fleet(&script, SolSetKind::Hybrid, threads, 4);
    }
}
