//! The incremental-equivalence property: a [`Session`] driven step-by-step
//! through a random edit history produces, after **every** step, the same
//! per-variable solution sets as a from-scratch solve of that step's live
//! constraint system — and after every *non-monotone* step, byte-identical
//! observables (statistics, census, least-solution buffers), because the
//! session replays the identical canonical sequence.
//!
//! The matrix covers all three solution-set backends and worker counts
//! 1/2/4/8 — none of which may change a single observable.

use bane_core::prelude::*;
use bane_serve::{Delta, GroupId, SessionBuilder};
use bane_synth::delta::{
    generate_delta_script, DeltaScript, DeltaScriptConfig, DeltaStep, ScriptBindings,
};
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Drives `script` through a session step by step, checking each state
/// against a from-scratch reference.
fn check_script(script: &DeltaScript, kind: SolSetKind, threads: usize) {
    let config = SolverConfig::if_online().with_solset(kind);
    let mut session = SessionBuilder::new().config(config).threads(threads).build();
    let mut bind = ScriptBindings::bind(&mut session, script);

    // The reference keeps only registration state + the live group list;
    // each step re-solves it from scratch.
    let mut ref_problem = Problem::new(config);
    let mut ref_bind = ScriptBindings::bind(&mut ref_problem, script);
    let mut ref_groups: Vec<Option<Vec<(SetExpr, SetExpr)>>> = Vec::new();
    let mut slot_map: Vec<GroupId> = Vec::new();

    for (i, step) in script.steps.iter().enumerate() {
        let mut delta = Delta::new();
        let mut nonmonotone = false;
        match step {
            DeltaStep::GrowVars(n) => {
                delta.add_vars(*n);
                // Session variables are created when the delta applies, but
                // their ids are sequential, so the bindings extend eagerly.
                let base = bind.vars.len();
                bind.vars.extend((0..*n as usize).map(|k| Var::new(base + k)));
                ref_bind.grow(&mut ref_problem, *n);
            }
            DeltaStep::AddGroup(cs) => {
                delta.add_group(bind.constraints(cs));
                ref_groups.push(Some(ref_bind.constraints(cs)));
            }
            DeltaStep::EditGroup { slot, constraints } => {
                delta.edit_group(slot_map[*slot], bind.constraints(constraints));
                ref_groups[*slot] = Some(ref_bind.constraints(constraints));
                nonmonotone = true;
            }
            DeltaStep::RemoveGroup { slot } => {
                delta.remove_group(slot_map[*slot]);
                ref_groups[*slot] = None;
                nonmonotone = true;
            }
        }
        let report = session.apply(delta);
        assert_eq!(report.monotone, !nonmonotone, "step {i}: path classification");
        if let DeltaStep::AddGroup(_) = step {
            assert_eq!(report.new_groups.len(), 1);
            slot_map.push(report.new_groups[0]);
        }
        assert!(
            report.outcome.dirty_levels <= report.outcome.total_levels,
            "step {i}: dirty levels within bounds"
        );

        let mut p = ref_problem.clone();
        for group in ref_groups.iter().flatten() {
            for &(l, r) in group {
                p.add(l, r);
            }
        }
        let mut reference = Solver::from_problem(p);
        reference.solve();
        let ref_ls = reference.least_solution();

        for &v in &bind.vars {
            let rv = reference.find(v);
            assert_eq!(
                session.points_to(v),
                ref_ls.get(rv),
                "step {i} ({kind:?}, {threads} threads): set of {v:?} diverged"
            );
        }

        if nonmonotone {
            // Canonical replay: full observable parity, down to the bytes.
            assert_eq!(session.stats(), reference.stats(), "step {i}: stats parity");
            assert_eq!(session.census(), reference.census(), "step {i}: census parity");
            assert_eq!(session.least_solution(), &ref_ls, "step {i}: least-solution bytes");
            assert_eq!(
                session.inconsistencies(),
                reference.inconsistencies(),
                "step {i}: inconsistency parity"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random scripts, every backend, every thread count.
    #[test]
    fn incremental_equals_from_scratch(seed in 0u64..1_000_000, steps in 6usize..24) {
        let script = generate_delta_script(&DeltaScriptConfig::sized(steps, seed));
        script.validate().expect("generated script validates");
        for kind in SolSetKind::ALL {
            for threads in THREADS {
                check_script(&script, kind, threads);
            }
        }
    }
}

/// A fixed long adversarial script, pinned outside proptest so it always
/// runs (and exercises every step kind — the generator's distribution
/// guarantees non-monotone steps at this length).
#[test]
fn long_mixed_script_all_backends() {
    let script = generate_delta_script(&DeltaScriptConfig::sized(60, 0xba7e));
    script.validate().expect("script validates");
    assert!(script.has_nonmonotone(), "long script must exercise replay");
    for kind in SolSetKind::ALL {
        check_script(&script, kind, 4);
    }
}
