//! The two-tier re-solve contract (`ApplyMode::Fast`), end to end: a Fast
//! session driven through a random edit-heavy history produces, after
//! **every** step, the same per-variable solution sets as (a) an Exact
//! session fed the identical deltas and (b) a from-scratch solve of that
//! step's live system — while repairing non-monotone steps in place
//! whenever no recorded cycle collapse is invalidated.
//!
//! What Fast does *not* promise — and these tests deliberately do not
//! assert — is byte-identical work counters after a repair: a repaired
//! solver's `stats()` reflect the retract/refire history, not a replay.
//! Solution sets, aliasing, and inconsistencies (as sets) are the
//! contract.
//!
//! The matrix covers all three solution-set backends and worker counts
//! 1/2/4/8, plus a directed collapse-invalidation scenario pinning the
//! replay fallback (`RevalidateOutcome::fell_back`, `serve.fast.fallback`).

use bane_core::prelude::*;
use bane_obs::Counter;
use bane_serve::{ApplyMode, Delta, GroupId, Session, SessionBuilder};
use bane_synth::delta::{
    generate_delta_script, DeltaScript, DeltaScriptConfig, DeltaStep, ScriptBindings,
};
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Inconsistency parity up to multiplicity: a repaired solver may
/// re-derive an error it already knew.
fn error_set(s: &[Inconsistency]) -> Vec<String> {
    let mut v: Vec<String> = s.iter().map(|e| format!("{e:?}")).collect();
    v.sort();
    v.dedup();
    v
}

/// Drives `script` through a Fast session and an Exact twin, checking
/// both against a from-scratch reference after every step. Returns
/// `(repaired, fallbacks)` across the run.
fn check_fast_script(script: &DeltaScript, kind: SolSetKind, threads: usize) -> (u64, u64) {
    let config = SolverConfig::if_online().with_solset(kind);
    let mut fast = SessionBuilder::new()
        .config(config)
        .threads(threads)
        .apply_mode(ApplyMode::Fast)
        .obs(true)
        .build();
    let mut exact = SessionBuilder::new().config(config).threads(threads).build();
    let mut bind = ScriptBindings::bind(&mut fast, script);
    ScriptBindings::bind(&mut exact, script);

    let mut ref_problem = Problem::new(config);
    let mut ref_bind = ScriptBindings::bind(&mut ref_problem, script);
    let mut ref_groups: Vec<Option<Vec<(SetExpr, SetExpr)>>> = Vec::new();
    let mut slot_map: Vec<GroupId> = Vec::new();

    for (i, step) in script.steps.iter().enumerate() {
        let mut delta = Delta::new();
        let mut nonmonotone = false;
        match step {
            DeltaStep::GrowVars(n) => {
                delta.add_vars(*n);
                let base = bind.vars.len();
                bind.vars.extend((0..*n as usize).map(|k| Var::new(base + k)));
                ref_bind.grow(&mut ref_problem, *n);
            }
            DeltaStep::AddGroup(cs) => {
                delta.add_group(bind.constraints(cs));
                ref_groups.push(Some(ref_bind.constraints(cs)));
            }
            DeltaStep::EditGroup { slot, constraints } => {
                delta.edit_group(slot_map[*slot], bind.constraints(constraints));
                ref_groups[*slot] = Some(ref_bind.constraints(constraints));
                nonmonotone = true;
            }
            DeltaStep::RemoveGroup { slot } => {
                delta.remove_group(slot_map[*slot]);
                ref_groups[*slot] = None;
                nonmonotone = true;
            }
        }
        let exact_report = exact.apply(delta.clone());
        let report = fast.apply(delta);
        assert_eq!(report.monotone, !nonmonotone, "step {i}: path classification");
        assert_eq!(report.new_groups, exact_report.new_groups, "step {i}: group ids align");
        if let DeltaStep::AddGroup(_) = step {
            slot_map.push(report.new_groups[0]);
        }
        if report.fast_repaired {
            assert!(!nonmonotone || !report.outcome.fell_back, "repair and fallback exclude");
        }

        let mut p = ref_problem.clone();
        for group in ref_groups.iter().flatten() {
            for &(l, r) in group {
                p.add(l, r);
            }
        }
        let mut reference = Solver::from_problem(p);
        reference.solve();
        let ref_ls = reference.least_solution();

        for &v in &bind.vars {
            let rv = reference.find(v);
            assert_eq!(
                fast.points_to(v),
                ref_ls.get(rv),
                "step {i} ({kind:?}, {threads} threads, repaired={}): set of {v:?} diverged \
                 from scratch",
                report.fast_repaired,
            );
            let ev = exact.points_to(v).to_vec();
            assert_eq!(
                fast.points_to(v),
                ev.as_slice(),
                "step {i} ({kind:?}, {threads} threads): Fast and Exact sets diverged at {v:?}"
            );
        }
        assert_eq!(
            error_set(fast.inconsistencies()),
            error_set(reference.inconsistencies()),
            "step {i}: inconsistency set parity"
        );
    }

    let rec = fast.recorder().expect("obs gated on");
    let repaired = rec.get(Counter::ServeFastRepaired);
    let fallbacks = rec.get(Counter::ServeFastFallback);
    let replayed = rec.get(Counter::ServeDeltaReplayed);
    assert_eq!(fallbacks, replayed, "every Fast replay is a recorded fallback");
    let nonmono = script
        .steps
        .iter()
        .filter(|s| matches!(s, DeltaStep::EditGroup { .. } | DeltaStep::RemoveGroup { .. }))
        .count() as u64;
    assert_eq!(repaired + fallbacks, nonmono, "each non-monotone step repairs or falls back");
    (repaired, fallbacks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random edit-heavy scripts, every backend, every thread count.
    #[test]
    fn fast_apply_equals_replay_and_scratch(seed in 0u64..1_000_000, steps in 8usize..24) {
        let script = generate_delta_script(&DeltaScriptConfig::edit_heavy(steps, seed, 2.0));
        script.validate().expect("generated script validates");
        for kind in SolSetKind::ALL {
            for threads in THREADS {
                check_fast_script(&script, kind, threads);
            }
        }
    }
}

/// A fixed long edit-heavy script, pinned outside proptest so it always
/// runs — and long enough that the fast path demonstrably fires (a suite
/// where every step fell back would vacuously pass the property above).
#[test]
fn long_edit_heavy_script_repairs_in_place() {
    let script = generate_delta_script(&DeltaScriptConfig::edit_heavy(60, 0xfa57, 2.0));
    script.validate().expect("script validates");
    assert!(script.has_nonmonotone(), "edit-heavy script must retract");
    let mut total_repaired = 0;
    for kind in SolSetKind::ALL {
        let (repaired, _) = check_fast_script(&script, kind, 4);
        total_repaired += repaired;
    }
    assert!(total_repaired > 0, "the fast path never fired across the whole suite");
}

/// The directed collapse-invalidation scenario: a removal that breaks a
/// collapsed cycle must take the replay fallback, flag it on the outcome
/// and the `serve.fast.fallback` counter, and still land on observables
/// byte-identical to an Exact session (a Fast replay tracks provenance,
/// which is observable-neutral).
#[test]
fn collapse_invalidation_falls_back_to_replay() {
    let build = |mode: ApplyMode| {
        let mut s = SessionBuilder::new().apply_mode(mode).obs(true).build();
        let c = s.register_nullary("c");
        let src = s.term(c, vec![]);
        let (x, y, z) = (s.fresh_var(), s.fresh_var(), s.fresh_var());
        let mut d = Delta::new();
        d.add_group(vec![(src.into(), x.into()), (x.into(), y.into())]); // g0
        d.add_group(vec![(y.into(), x.into())]); // g1: closes the x/y cycle
        d.add_group(vec![(src.into(), z.into())]); // g2: uninvolved
        s.apply(d);
        (s, src, [x, y, z])
    };

    let (mut fast, src, vars) = build(ApplyMode::Fast);
    let (mut exact, _, _) = build(ApplyMode::Exact);
    assert_eq!(fast.find(vars[0]), fast.find(vars[1]), "cycle collapsed online");

    // Removing g2 touches no collapse: repaired in place.
    let report = fast.apply(Delta::new().remove_group(GroupId::new(2)).clone());
    exact.apply(Delta::new().remove_group(GroupId::new(2)).clone());
    assert!(report.fast_repaired, "uninvolved removal must repair in place");
    assert!(!report.outcome.fell_back);
    assert_eq!(fast.points_to(vars[2]), &[] as &[TermId]);

    // Removing g1 invalidates the recorded x/y collapse: replay fallback.
    let report = fast.apply(Delta::new().remove_group(GroupId::new(1)).clone());
    exact.apply(Delta::new().remove_group(GroupId::new(1)).clone());
    assert!(!report.fast_repaired, "collapse-breaking removal cannot repair");
    assert!(report.outcome.fell_back, "fallback must be flagged on the outcome");

    {
        let rec = fast.recorder().expect("obs gated on");
        assert_eq!(rec.get(Counter::ServeFastRepaired), 1);
        assert_eq!(rec.get(Counter::ServeFastFallback), 1);
        assert!(rec.get(Counter::ServeFastRetractedEdges) > 0, "the repair removed edges");
    }

    // After the fallback replay the Fast session is byte-identical to the
    // Exact one — including stats, the strongest form of the contract.
    assert_eq!(fast.stats(), exact.stats(), "fallback replay is byte-identical");
    assert_eq!(fast.census(), exact.census());
    for v in vars {
        let e = exact.points_to(v).to_vec();
        assert_eq!(fast.points_to(v), e.as_slice(), "{v:?}");
    }
    assert_eq!(fast.points_to(vars[0]), &[src]);

    // And the fallback was a one-batch event: the rebuilt solver tracks
    // provenance again, so the next clean removal repairs in place.
    let report = fast.apply(Delta::new().remove_group(GroupId::new(0)).clone());
    assert!(report.fast_repaired, "provenance survives the fallback rebuild");
    assert_eq!(fast.points_to(vars[0]), &[] as &[TermId]);
    assert_eq!(fast.recorder().unwrap().get(Counter::ServeFastRepaired), 2);
}

/// `Session::live_constraints` tracks the live group contents — the load
/// measure behind the `fleet.balance.*` gauges.
#[test]
fn live_constraints_track_group_liveness() {
    let mut s: Session = SessionBuilder::new().build();
    let c = s.register_nullary("c");
    let src = s.term(c, vec![]);
    let (x, y) = (s.fresh_var(), s.fresh_var());
    let mut d = Delta::new();
    d.add_group(vec![(src.into(), x.into()), (x.into(), y.into())]);
    d.add_group(vec![(src.into(), y.into())]);
    s.apply(d);
    assert_eq!(s.live_constraints(), 3);
    s.apply(Delta::new().remove_group(GroupId::new(0)).clone());
    assert_eq!(s.live_constraints(), 1);
    let mut e = Delta::new();
    e.edit_group(GroupId::new(1), vec![(src.into(), y.into()), (src.into(), x.into())]);
    s.apply(e);
    assert_eq!(s.live_constraints(), 2);
}
