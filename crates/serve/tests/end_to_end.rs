//! The headline incremental scenario, end to end: analyze a suite program,
//! re-parse **one function** (edit one constraint group), and check that
//! the session
//!
//! 1. re-solves only the affected SCC condensation levels — pinned via the
//!    `serve.dirty.levels` gauge staying strictly below the total level
//!    count — and
//! 2. lands on *byte-identical* observables (least solution, work
//!    counters, census) to a from-scratch solve of the edited system,
//!
//! under every solution-set backend.

use bane_core::prelude::*;
use bane_obs::Counter;
use bane_points_to::andersen;
use bane_serve::{Delta, GroupId, SessionBuilder};
use bane_synth::{suite_program, PAPER_SUITE};

/// Groups the suite program's constraints into this many "functions".
const GROUPS: usize = 16;

/// Builds the Andersen constraint system of the smallest suite program as
/// a `Problem` under `kind`.
fn suite_problem(kind: SolSetKind) -> Problem {
    let entry = PAPER_SUITE
        .iter()
        .min_by_key(|e| e.ast_nodes)
        .expect("suite is non-empty");
    let program = suite_program(entry, 0.2);
    let mut problem = Problem::new(SolverConfig::if_online().with_solset(kind));
    andersen::generate(&program, &mut problem);
    problem
}

#[test]
fn one_function_edit_is_level_local_and_byte_identical() {
    for kind in SolSetKind::ALL {
        let problem = suite_problem(kind);
        let total_constraints = problem.constraints().len();
        assert!(total_constraints > GROUPS, "system large enough to group");
        let reference_problem = problem.clone();

        let mut session = SessionBuilder::new().obs(true).build_grouped(problem, GROUPS);
        assert_eq!(session.group_slots(), GROUPS);

        // "Re-parse" one mid-program function: drop the group's last
        // constraint, keep the rest — a minimal, local source change.
        let g = GroupId::new(GROUPS as u32 / 2);
        let original = session.group(g).expect("group is live").to_vec();
        assert!(original.len() > 1, "edited group has content");
        let edited = original[..original.len() - 1].to_vec();

        let mut delta = Delta::new();
        delta.edit_group(g, edited.clone());
        let report = session.apply(delta);
        assert!(!report.monotone, "an edit must replay");

        // (1) Localization: only the affected condensation levels re-ran.
        let outcome = report.outcome;
        assert!(outcome.total_levels > 1, "suite system has depth");
        assert!(
            outcome.dirty_levels < outcome.total_levels,
            "{kind:?}: edit dirtied {}/{} levels — not level-local",
            outcome.dirty_levels,
            outcome.total_levels
        );
        assert!(
            outcome.reused_vars > 0,
            "{kind:?}: revalidation reused nothing"
        );
        let rec = session.recorder().expect("obs enabled");
        assert_eq!(rec.get(Counter::ServeDirtyLevels), outcome.dirty_levels as u64);
        assert_eq!(rec.get(Counter::ServeDirtyVars), outcome.dirty_vars as u64);
        assert_eq!(rec.get(Counter::ServeDeltaReplayed), 1);

        // (2) Byte identity against a from-scratch solve of the edited
        // canonical sequence.
        let mut ref_problem = reference_problem;
        let mut constraints = ref_problem.split_off_constraints(0);
        let per = total_constraints.div_ceil(GROUPS);
        let start = g.index() * per;
        let end = (start + per).min(constraints.len());
        assert_eq!(&constraints[start..end], &original[..], "group slicing agrees");
        constraints.splice(start..end, edited);
        for (l, r) in constraints {
            ref_problem.add(l, r);
        }
        let mut reference = Solver::from_problem(ref_problem);
        reference.solve();

        assert_eq!(session.stats(), reference.stats(), "{kind:?}: work-counter parity");
        assert_eq!(session.census(), reference.census(), "{kind:?}: census parity");
        assert_eq!(
            session.least_solution(),
            &reference.least_solution(),
            "{kind:?}: least-solution bytes"
        );
    }
}

#[test]
fn monotone_growth_after_initial_solve_is_level_local() {
    let problem = suite_problem(SolSetKind::SortedSpan);
    let mut session = SessionBuilder::new().obs(true).build_grouped(problem, GROUPS);

    // Append a small new "function": fresh variables fed from an existing
    // group's first constraint endpoint.
    let seed = session.group(GroupId::new(0)).expect("live group")[0].0;
    let mut delta = Delta::new();
    let base = session.solver().vars_created() as usize;
    delta.add_vars(2);
    let (x, y) = (Var::new(base), Var::new(base + 1));
    delta.add_group(vec![(seed, x.into()), (x.into(), y.into())]);
    let report = session.apply(delta);

    assert!(report.monotone, "pure additions stay on the live path");
    assert!(
        report.outcome.dirty_levels < report.outcome.total_levels,
        "monotone growth dirtied {}/{} levels",
        report.outcome.dirty_levels,
        report.outcome.total_levels
    );
    assert!(report.outcome.reused_vars > report.outcome.dirty_vars);
    let rec = session.recorder().expect("obs enabled");
    assert_eq!(rec.get(Counter::ServeDeltaMonotone), 1);
    assert!(rec.get(Counter::ServeReuseHit) > 0);
}
