//! A tiny deterministic PRNG.
//!
//! `bane-core` needs randomness in exactly one place: the paper's preferred
//! *random variable order* `o(·)` for inductive form (Section 2.4: "we have
//! found that a random order performs as well or better than any other order
//! we picked"). To keep the core crate dependency-free and runs reproducible,
//! we use SplitMix64 — a tiny, well-distributed 64-bit generator — rather
//! than pulling `rand` into the solver.

/// The SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use bane_util::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return raw % bound;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0x5eed_5eed_5eed_5eed)
    }
}

/// Fisher–Yates shuffles `slice` in place using `rng`.
///
/// # Examples
///
/// ```
/// use bane_util::SplitMix64;
/// use bane_util::rng::shuffle;
///
/// let mut xs: Vec<u32> = (0..10).collect();
/// shuffle(&mut xs, &mut SplitMix64::new(1));
/// let mut sorted = xs.clone();
/// sorted.sort();
/// assert_eq!(sorted, (0..10).collect::<Vec<_>>());
/// ```
pub fn shuffle<T>(slice: &mut [T], rng: &mut SplitMix64) {
    for i in (1..slice.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        slice.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(rng.next_below(7) < 7);
        }
        // Every residue appears for a small bound.
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation_and_seed_dependent() {
        let base: Vec<u32> = (0..50).collect();
        let mut x = base.clone();
        let mut y = base.clone();
        shuffle(&mut x, &mut SplitMix64::new(5));
        shuffle(&mut y, &mut SplitMix64::new(6));
        assert_ne!(x, y, "different seeds give different orders");
        let mut sx = x.clone();
        sx.sort();
        assert_eq!(sx, base);
    }

    #[test]
    fn shuffle_handles_degenerate_slices() {
        let mut rng = SplitMix64::new(3);
        let mut empty: [u32; 0] = [];
        shuffle(&mut empty, &mut rng);
        let mut one = [42];
        shuffle(&mut one, &mut rng);
        assert_eq!(one, [42]);
    }
}
