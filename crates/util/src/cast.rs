//! Checked zero-copy reinterpretation between byte and word slices.
//!
//! The on-disk snapshot format (`bane-snap`) stores all numeric sections as
//! little-endian `u32`/`u64` words at 8-byte-aligned offsets. On a
//! little-endian host a loaded file can therefore be viewed directly as word
//! slices without copying — but only if the pointer really is aligned and the
//! length really is a whole number of words. The functions here perform
//! exactly those checks and return `None` instead of invoking undefined
//! behaviour when they fail, so callers can surface corruption as an error.
//!
//! Big-endian hosts must not use the zero-copy view; the loader in
//! `bane-snap` rejects files whose endianness marker does not match the host
//! before these functions are reached.
//!
//! # Examples
//!
//! ```
//! use bane_util::cast;
//!
//! let words: Vec<u32> = vec![1, 2, 3];
//! let bytes = cast::u32s_as_bytes(&words);
//! assert_eq!(bytes.len(), 12);
//! assert_eq!(cast::as_u32s(bytes), Some(&words[..]));
//! ```

/// Views a byte slice as `u32` words, zero-copy.
///
/// Returns `None` if the slice is misaligned for `u32` or its length is not
/// a multiple of 4.
#[inline]
pub fn as_u32s(bytes: &[u8]) -> Option<&[u32]> {
    // An empty slice casts unconditionally: its pointer is never read, and
    // its address (alignment 1) carries no information. Empty sections are
    // legitimate in the snapshot format, so this must not depend on where a
    // zero-length borrow happens to point.
    if bytes.is_empty() {
        return Some(&[]);
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u32>())
        || !bytes.len().is_multiple_of(4)
    {
        return None;
    }
    // SAFETY: alignment and length divisibility checked above; every bit
    // pattern is a valid u32; the lifetime is inherited from `bytes`.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), bytes.len() / 4) })
}

/// Views a byte slice as `u64` words, zero-copy.
///
/// Returns `None` if the slice is misaligned for `u64` or its length is not
/// a multiple of 8.
#[inline]
pub fn as_u64s(bytes: &[u8]) -> Option<&[u64]> {
    // See `as_u32s`: empty casts must succeed regardless of address.
    if bytes.is_empty() {
        return Some(&[]);
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u64>())
        || !bytes.len().is_multiple_of(8)
    {
        return None;
    }
    // SAFETY: alignment and length divisibility checked above; every bit
    // pattern is a valid u64; the lifetime is inherited from `bytes`.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u64>(), bytes.len() / 8) })
}

/// Views `u32` words as their underlying bytes in host order, zero-copy.
///
/// Total: word slices are always validly readable as bytes.
#[inline]
pub fn u32s_as_bytes(words: &[u32]) -> &[u8] {
    // SAFETY: u32 has no padding and byte alignment (1) is always satisfied.
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 4) }
}

/// Views `u64` words as their underlying bytes in host order, zero-copy.
///
/// Total: word slices are always validly readable as bytes.
#[inline]
pub fn u64s_as_bytes(words: &[u64]) -> &[u8] {
    // SAFETY: u64 has no padding and byte alignment (1) is always satisfied.
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 8) }
}

/// Whether the host stores integers little-endian.
///
/// The snapshot format is defined as little-endian on disk; on a big-endian
/// host the zero-copy read path is unsound and the loader must refuse (or
/// byte-swap, which v1 does not implement).
#[inline]
pub const fn host_is_little_endian() -> bool {
    cfg!(target_endian = "little")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        let words: Vec<u32> = vec![0, 1, 0xdead_beef, u32::MAX];
        let bytes = u32s_as_bytes(&words);
        assert_eq!(bytes.len(), 16);
        assert_eq!(as_u32s(bytes), Some(&words[..]));
    }

    #[test]
    fn u64_roundtrip() {
        let words: Vec<u64> = vec![7, u64::MAX, 0x0123_4567_89ab_cdef];
        let bytes = u64s_as_bytes(&words);
        assert_eq!(bytes.len(), 24);
        assert_eq!(as_u64s(bytes), Some(&words[..]));
    }

    #[test]
    fn length_not_divisible_rejected() {
        let backing: Vec<u64> = vec![0, 0];
        let bytes = u64s_as_bytes(&backing);
        assert_eq!(as_u32s(&bytes[..7]), None);
        assert_eq!(as_u64s(&bytes[..12]), None);
    }

    #[test]
    fn misaligned_rejected() {
        let backing: Vec<u64> = vec![0; 4];
        let bytes = u64s_as_bytes(&backing);
        // Offset by one byte: still plenty long, but misaligned.
        assert_eq!(as_u32s(&bytes[1..13]), None);
        assert_eq!(as_u64s(&bytes[1..17]), None);
        // Offset by four bytes: fine for u32, misaligned for u64.
        assert!(as_u32s(&bytes[4..12]).is_some());
        assert_eq!(as_u64s(&bytes[4..20]), None);
    }

    #[test]
    fn empty_slices_ok() {
        assert_eq!(as_u32s(&[]), Some(&[][..]));
        assert_eq!(as_u64s(&[]), Some(&[][..]));
        assert_eq!(u32s_as_bytes(&[]), &[] as &[u8]);
    }
}
