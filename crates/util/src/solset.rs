//! Shared sparse-bitmap storage for solution sets.
//!
//! The least-solution pass materializes one sorted term set per variable,
//! and real constraint graphs put (near-)identical sets on hundreds of
//! variables — every member of a collapsed cycle, and most variables on the
//! same condensation level, end up with the same points-to set. A
//! [`SparseBitmap`] stores a set as a sorted list of `(block index,
//! block id)` chunks whose 256-bit payloads live in a shared, hash-consed
//! [`BlockArena`]: two sets with an identical block carry the *same*
//! [`BlockId`], so aliasing is free and the dense tail of the distribution
//! is stored once.
//!
//! The representation is deliberately element-type-agnostic (`u32` bits);
//! `bane-core` layers its typed `TermId` solution-set backends on top.

use crate::hash::FxHashMap;

/// Bits covered by one interned block.
pub const BLOCK_BITS: usize = 256;
/// `u64` words per block.
pub const BLOCK_WORDS: usize = BLOCK_BITS / 64;
/// One immutable 256-bit payload.
pub type Block = [u64; BLOCK_WORDS];

/// Index of an interned [`Block`] in a [`BlockArena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// The arena position this id names.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A hash-consing arena of immutable 256-bit blocks.
///
/// `intern` returns the id of an existing identical block when one exists
/// (counted in [`share_hits`](BlockArena::share_hits)), so bitmaps built
/// over the same arena physically share their common payloads. Blocks are
/// never mutated in place — updating a bitmap chunk means interning the
/// OR'd payload and swapping the id.
///
/// # Examples
///
/// ```
/// use bane_util::solset::{BlockArena, SparseBitmap};
///
/// let mut arena = BlockArena::new();
/// let mut a = SparseBitmap::new();
/// let mut b = SparseBitmap::new();
/// a.insert_sorted(&mut arena, [3, 7, 300].iter().copied(), None);
/// b.insert_sorted(&mut arena, [3, 7, 300].iter().copied(), None);
/// assert_eq!(a.chunks(), b.chunks(), "identical sets alias identical blocks");
/// assert!(arena.share_hits() > 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BlockArena {
    blocks: Vec<Block>,
    dedup: FxHashMap<Block, BlockId>,
    share_hits: u64,
}

impl BlockArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `block`, returning the id of the canonical copy.
    ///
    /// # Panics
    ///
    /// Panics on an all-zero block (an empty chunk must be dropped, not
    /// stored) or on arena overflow.
    pub fn intern(&mut self, block: Block) -> BlockId {
        debug_assert!(block.iter().any(|&w| w != 0), "empty blocks are never interned");
        if let Some(&id) = self.dedup.get(&block) {
            self.share_hits += 1;
            return id;
        }
        let id = BlockId(u32::try_from(self.blocks.len()).expect("block arena overflow"));
        self.blocks.push(block);
        self.dedup.insert(block, id);
        id
    }

    /// The payload of `id`.
    pub fn get(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Number of distinct blocks interned.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no blocks have been interned.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Interns that were answered by an existing block (the sharing wins).
    pub fn share_hits(&self) -> u64 {
        self.share_hits
    }

    /// Approximate heap bytes held by the distinct payloads (the dedup map
    /// roughly doubles it; callers reporting memory use
    /// [`heap_bytes`](BlockArena::heap_bytes)).
    pub fn heap_bytes(&self) -> usize {
        // Payload vector plus the dedup map's key copies and id values.
        let block = std::mem::size_of::<Block>();
        self.blocks.capacity() * block + self.dedup.len() * (block + 8)
    }

    /// Drops every block and resets the sharing statistics.
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.dedup.clear();
        self.share_hits = 0;
    }
}

/// A sparse bitmap over `u32` elements: sorted `(block index, block id)`
/// chunks into a shared [`BlockArena`]. See the [module docs](self).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SparseBitmap {
    /// Sorted by block index; ids point into the owning arena. Chunks are
    /// never all-zero.
    chunks: Vec<(u32, BlockId)>,
    /// Cached cardinality.
    len: u32,
}

impl SparseBitmap {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Removes all elements (keeps chunk capacity; arena blocks are shared
    /// and never reclaimed per set).
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }

    /// The raw chunk list (exposed so tests and memory accounting can see
    /// block-level sharing).
    pub fn chunks(&self) -> &[(u32, BlockId)] {
        &self.chunks
    }

    /// Heap bytes of the per-set chunk list (shared block payloads are
    /// accounted once, on the arena).
    pub fn heap_bytes(&self) -> usize {
        self.chunks.capacity() * std::mem::size_of::<(u32, BlockId)>()
    }

    /// Whether `elem` is present.
    pub fn contains(&self, arena: &BlockArena, elem: u32) -> bool {
        let base = elem / BLOCK_BITS as u32;
        match self.chunks.binary_search_by_key(&base, |&(b, _)| b) {
            Err(_) => false,
            Ok(pos) => {
                let bit = (elem % BLOCK_BITS as u32) as usize;
                arena.get(self.chunks[pos].1)[bit / 64] & (1u64 << (bit % 64)) != 0
            }
        }
    }

    /// Unions a **strictly increasing** element sequence into the set.
    ///
    /// Returns the number of elements actually added; when `fresh` is given,
    /// the added elements are appended to it in increasing order.
    pub fn insert_sorted(
        &mut self,
        arena: &mut BlockArena,
        elems: impl IntoIterator<Item = u32>,
        mut fresh: Option<&mut Vec<u32>>,
    ) -> usize {
        let mut added = 0usize;
        let mut it = elems.into_iter().peekable();
        // Cursor into `chunks`; both the chunk list and the input are
        // sorted, so each block is located with one forward scan step plus
        // a bounded gallop, never a full binary search from scratch.
        let mut pos = 0usize;
        while let Some(&first) = it.peek() {
            let base = first / BLOCK_BITS as u32;
            // Batch every input element of this block into one payload.
            let mut add: Block = [0; BLOCK_WORDS];
            let mut prev = None;
            while let Some(&e) = it.peek() {
                if e / BLOCK_BITS as u32 != base {
                    break;
                }
                debug_assert!(prev.is_none_or(|p| p < e), "input must be strictly increasing");
                prev = Some(e);
                let bit = (e % BLOCK_BITS as u32) as usize;
                add[bit / 64] |= 1u64 << (bit % 64);
                it.next();
            }
            while pos < self.chunks.len() && self.chunks[pos].0 < base {
                pos += 1;
            }
            if pos < self.chunks.len() && self.chunks[pos].0 == base {
                let old = *arena.get(self.chunks[pos].1);
                let mut new = old;
                for (n, a) in new.iter_mut().zip(&add) {
                    *n |= a;
                }
                if new != old {
                    let mut diff = [0u64; BLOCK_WORDS];
                    for ((d, n), o) in diff.iter_mut().zip(&new).zip(&old) {
                        *d = n & !o;
                    }
                    added += count_and_collect(base, &diff, fresh.as_deref_mut());
                    self.chunks[pos].1 = arena.intern(new);
                }
            } else {
                added += count_and_collect(base, &add, fresh.as_deref_mut());
                self.chunks.insert(pos, (base, arena.intern(add)));
            }
            pos += 1;
        }
        self.len += added as u32;
        added
    }

    /// Unions `other` into `self`.
    ///
    /// Chunks absent from `self` are *aliased* — the [`BlockId`] is copied,
    /// no payload is touched — which is where same-level variables with
    /// identical sets collapse to shared storage. Returns the number of
    /// elements added; `fresh` (if given) receives them in increasing order.
    /// `scratch` is caller-provided chunk scratch so a warmed caller
    /// allocates nothing.
    pub fn union_with(
        &mut self,
        arena: &mut BlockArena,
        other: &SparseBitmap,
        scratch: &mut Vec<(u32, BlockId)>,
        mut fresh: Option<&mut Vec<u32>>,
    ) -> usize {
        if other.chunks.is_empty() {
            return 0;
        }
        if self.chunks.is_empty() {
            // Pure aliasing: adopt the other set's chunk list wholesale.
            self.chunks.clone_from(&other.chunks);
            self.len = other.len;
            if let Some(fresh) = fresh {
                for &(base, id) in &self.chunks {
                    count_and_collect(base, arena.get(id), Some(fresh));
                }
            }
            return other.len();
        }
        let mut added = 0usize;
        scratch.clear();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.chunks.len() || j < other.chunks.len() {
            let take_self = j >= other.chunks.len()
                || (i < self.chunks.len() && self.chunks[i].0 < other.chunks[j].0);
            if take_self {
                scratch.push(self.chunks[i]);
                i += 1;
            } else if i >= self.chunks.len() || other.chunks[j].0 < self.chunks[i].0 {
                let (base, id) = other.chunks[j];
                added += count_and_collect(base, arena.get(id), fresh.as_deref_mut());
                scratch.push((base, id)); // aliased, not copied
                j += 1;
            } else {
                let (base, mine) = self.chunks[i];
                let theirs = other.chunks[j].1;
                if mine == theirs {
                    scratch.push((base, mine)); // already shared
                } else {
                    let old = *arena.get(mine);
                    let their = *arena.get(theirs);
                    let mut new = old;
                    for (n, t) in new.iter_mut().zip(&their) {
                        *n |= t;
                    }
                    if new == old {
                        scratch.push((base, mine));
                    } else {
                        let mut diff = [0u64; BLOCK_WORDS];
                        for ((d, n), o) in diff.iter_mut().zip(&new).zip(&old) {
                            *d = n & !o;
                        }
                        added += count_and_collect(base, &diff, fresh.as_deref_mut());
                        scratch.push((base, arena.intern(new)));
                    }
                }
                i += 1;
                j += 1;
            }
        }
        std::mem::swap(&mut self.chunks, scratch);
        self.len += added as u32;
        added
    }

    /// Calls `f` on every element in increasing order.
    pub fn for_each(&self, arena: &BlockArena, mut f: impl FnMut(u32)) {
        for &(base, id) in &self.chunks {
            emit_block(base, arena.get(id), &mut |e| f(e));
        }
    }
}

/// Counts the bits of `block`, appending the decoded elements to `fresh`
/// when given. Returns the popcount either way.
fn count_and_collect(base: u32, block: &Block, fresh: Option<&mut Vec<u32>>) -> usize {
    match fresh {
        None => block.iter().map(|w| w.count_ones() as usize).sum(),
        Some(out) => {
            let before = out.len();
            emit_block(base, block, &mut |e| out.push(e));
            out.len() - before
        }
    }
}

/// Decodes `block` (at block index `base`) into elements, in order.
fn emit_block(base: u32, block: &Block, f: &mut impl FnMut(u32)) {
    let origin = base * BLOCK_BITS as u32;
    for (wi, &word) in block.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            let b = w.trailing_zeros();
            w &= w - 1;
            f(origin + wi as u32 * 64 + b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(s: &SparseBitmap, arena: &BlockArena) -> Vec<u32> {
        let mut out = Vec::new();
        s.for_each(arena, |e| out.push(e));
        out
    }

    #[test]
    fn insert_contains_iterate() {
        let mut arena = BlockArena::new();
        let mut s = SparseBitmap::new();
        let elems = [0u32, 1, 63, 64, 255, 256, 1000, 70_000];
        assert_eq!(s.insert_sorted(&mut arena, elems.iter().copied(), None), elems.len());
        assert_eq!(s.len(), elems.len());
        assert_eq!(collect(&s, &arena), elems);
        for &e in &elems {
            assert!(s.contains(&arena, e));
        }
        assert!(!s.contains(&arena, 2));
        assert!(!s.contains(&arena, 100_000));
        // Re-inserting is a no-op.
        assert_eq!(s.insert_sorted(&mut arena, elems.iter().copied(), None), 0);
        assert_eq!(s.len(), elems.len());
    }

    #[test]
    fn insert_reports_fresh_elements_only() {
        let mut arena = BlockArena::new();
        let mut s = SparseBitmap::new();
        s.insert_sorted(&mut arena, [5u32, 300].iter().copied(), None);
        let mut fresh = Vec::new();
        let added =
            s.insert_sorted(&mut arena, [4u32, 5, 6, 300, 301].iter().copied(), Some(&mut fresh));
        assert_eq!(added, 3);
        assert_eq!(fresh, vec![4, 6, 301]);
    }

    #[test]
    fn union_aliases_whole_chunk_lists() {
        let mut arena = BlockArena::new();
        let mut a = SparseBitmap::new();
        a.insert_sorted(&mut arena, [1u32, 2, 600].iter().copied(), None);
        let mut b = SparseBitmap::new();
        let mut scratch = Vec::new();
        let mut fresh = Vec::new();
        assert_eq!(b.union_with(&mut arena, &a, &mut scratch, Some(&mut fresh)), 3);
        assert_eq!(fresh, vec![1, 2, 600]);
        assert_eq!(b.chunks(), a.chunks(), "empty ∪ a aliases a's blocks");
        // Union with overlap: merged blocks are interned, disjoint blocks
        // aliased.
        let mut c = SparseBitmap::new();
        c.insert_sorted(&mut arena, [2u32, 3, 9000].iter().copied(), None);
        fresh.clear();
        assert_eq!(a.union_with(&mut arena, &c, &mut scratch, Some(&mut fresh)), 2);
        assert_eq!(fresh, vec![3, 9000]);
        assert_eq!(collect(&a, &arena), vec![1, 2, 3, 600, 9000]);
        assert_eq!(a.chunks()[2], c.chunks()[1], "disjoint chunk is aliased");
        // Idempotent.
        assert_eq!(a.union_with(&mut arena, &c, &mut scratch, None), 0);
    }

    #[test]
    fn identical_sets_share_interned_blocks() {
        let mut arena = BlockArena::new();
        let mut a = SparseBitmap::new();
        let mut b = SparseBitmap::new();
        let elems = [7u32, 8, 9, 512, 513];
        a.insert_sorted(&mut arena, elems.iter().copied(), None);
        let before = arena.len();
        b.insert_sorted(&mut arena, elems.iter().copied(), None);
        assert_eq!(arena.len(), before, "no new payloads for an identical set");
        assert_eq!(a.chunks(), b.chunks());
        assert!(arena.share_hits() >= 2);
        assert!(arena.heap_bytes() > 0);
        assert!(a.heap_bytes() > 0);
    }

    #[test]
    fn clear_and_empty_behaviour() {
        let mut arena = BlockArena::new();
        let mut s = SparseBitmap::new();
        assert!(s.is_empty());
        s.insert_sorted(&mut arena, [42u32].iter().copied(), None);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(&arena, 42));
        let empty = SparseBitmap::new();
        let mut scratch = Vec::new();
        assert_eq!(s.union_with(&mut arena, &empty, &mut scratch, None), 0);
    }

    #[test]
    fn matches_a_reference_model_on_random_streams() {
        use crate::rng::SplitMix64;
        let mut rng = SplitMix64::new(0x50153E7);
        for round in 0..30 {
            let mut arena = BlockArena::new();
            let mut s = SparseBitmap::new();
            let mut model = std::collections::BTreeSet::new();
            for _ in 0..20 {
                let mut batch: Vec<u32> =
                    (0..rng.next_below(40)).map(|_| rng.next_below(5_000) as u32).collect();
                batch.sort_unstable();
                batch.dedup();
                let expect_added =
                    batch.iter().filter(|e| !model.contains(*e)).count();
                let mut fresh = Vec::new();
                let added =
                    s.insert_sorted(&mut arena, batch.iter().copied(), Some(&mut fresh));
                assert_eq!(added, expect_added, "round {round}");
                assert_eq!(fresh.len(), added);
                model.extend(batch);
                assert_eq!(s.len(), model.len());
            }
            assert_eq!(
                collect(&s, &arena),
                model.iter().copied().collect::<Vec<_>>(),
                "round {round}"
            );
        }
    }
}
