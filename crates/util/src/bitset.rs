//! Bit sets used by the solver's graph algorithms.
//!
//! [`BitSet`] is a plain growable bit set; [`EpochSet`] is a "visited marks"
//! structure that can be cleared in O(1) by bumping an epoch counter — the
//! online cycle-detection search runs on *every* variable-variable edge
//! addition, so clearing a bitmap per search would dominate its cost.

/// A growable bit set over `usize` elements.
///
/// # Examples
///
/// ```
/// use bane_util::BitSet;
///
/// let mut s = BitSet::new(10);
/// assert!(s.insert(3));
/// assert!(!s.insert(3), "already present");
/// assert!(s.contains(3));
/// assert_eq!(s.count(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates a set sized for elements `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self { words: vec![0; capacity.div_ceil(64)] }
    }

    fn ensure(&mut self, bit: usize) {
        let word = bit / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
    }

    /// Inserts `bit`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, bit: usize) -> bool {
        self.ensure(bit);
        let (w, b) = (bit / 64, bit % 64);
        let mask = 1u64 << b;
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        fresh
    }

    /// Removes `bit`; returns `true` if it was present.
    pub fn remove(&mut self, bit: usize) -> bool {
        let (w, b) = (bit / 64, bit % 64);
        if w >= self.words.len() {
            return false;
        }
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        present
    }

    /// Whether `bit` is present.
    pub fn contains(&self, bit: usize) -> bool {
        let (w, b) = (bit / 64, bit % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements (keeps capacity).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (dst, &src) in self.words.iter_mut().zip(&other.words) {
            let old = *dst;
            *dst |= src;
            changed |= *dst != old;
        }
        changed
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::default();
        for bit in iter {
            s.insert(bit);
        }
        s
    }
}

/// An epoch counter usable as the stamp type of an [`EpochSetImpl`].
///
/// Production code uses `u32` (one physical reset per 2^32 generations);
/// tests parameterize over `u8` so the wraparound path runs after only 255
/// generations and its reset semantics can be pinned cheaply.
pub trait EpochStamp: Copy + Eq + Default {
    /// The first generation after a physical reset. Must differ from
    /// `Self::default()`, which is the "never marked" stamp.
    const ONE: Self;

    /// The next generation, or `None` on overflow (the caller must then
    /// physically reset all stamps and restart from [`EpochStamp::ONE`]).
    fn next(self) -> Option<Self>;
}

impl EpochStamp for u32 {
    const ONE: Self = 1;

    fn next(self) -> Option<Self> {
        self.checked_add(1)
    }
}

impl EpochStamp for u8 {
    const ONE: Self = 1;

    fn next(self) -> Option<Self> {
        self.checked_add(1)
    }
}

/// A visited-marks set with O(1) clearing via epoch stamps, generic over the
/// stamp width. Use the [`EpochSet`] alias unless testing wraparound.
///
/// # Examples
///
/// ```
/// use bane_util::EpochSet;
///
/// let mut v = EpochSet::new(8);
/// v.begin();
/// assert!(v.mark(2));
/// assert!(!v.mark(2));
/// v.begin(); // O(1) clear
/// assert!(v.mark(2));
/// ```
#[derive(Clone, Debug)]
pub struct EpochSetImpl<E: EpochStamp = u32> {
    stamps: Vec<E>,
    epoch: E,
    resets: u64,
}

impl<E: EpochStamp> Default for EpochSetImpl<E> {
    fn default() -> Self {
        Self::new(0)
    }
}

/// The production epoch set: `u32` stamps, one physical reset per 2^32
/// generations.
pub type EpochSet = EpochSetImpl<u32>;

impl<E: EpochStamp> EpochSetImpl<E> {
    /// Creates a set sized for elements `0..capacity`.
    ///
    /// The epoch starts at [`EpochStamp::ONE`], never at `E::default()`:
    /// `default` is the "never marked" stamp every fresh (or grown) slot
    /// carries, so an epoch equal to it would make unmarked elements read as
    /// marked — and a `grow` during that state would resurrect stale marks.
    pub fn new(capacity: usize) -> Self {
        Self { stamps: vec![E::default(); capacity], epoch: E::ONE, resets: 0 }
    }

    /// Starts a new generation, logically clearing all marks.
    pub fn begin(&mut self) {
        self.epoch = self.epoch.next().unwrap_or_else(|| {
            // Wrapped: physically reset (for u32, once per 2^32 searches).
            self.stamps.fill(E::default());
            self.resets += 1;
            E::ONE
        });
    }

    /// Number of physical wraparound resets so far (the `epoch.resets`
    /// observability counter).
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Grows the domain to hold elements `0..capacity`.
    ///
    /// Safe mid-generation: new slots get the `E::default()` "never marked"
    /// stamp, which (by construction — the epoch starts at
    /// [`EpochStamp::ONE`] and only counts up) can never equal the active
    /// epoch, so growing cannot resurrect marks.
    pub fn grow(&mut self, capacity: usize) {
        debug_assert!(self.epoch != E::default(), "active epoch aliases the fresh stamp");
        if capacity > self.stamps.len() {
            self.stamps.resize(capacity, E::default());
        }
    }

    /// Marks `elem`; returns `true` if it was unmarked in this generation.
    ///
    /// Grows the set if `elem` is out of range.
    pub fn mark(&mut self, elem: usize) -> bool {
        if elem >= self.stamps.len() {
            self.stamps.resize(elem + 1, E::default());
        }
        if self.stamps[elem] == self.epoch {
            false
        } else {
            self.stamps[elem] = self.epoch;
            true
        }
    }

    /// Whether `elem` is marked in the current generation.
    pub fn is_marked(&self, elem: usize) -> bool {
        self.stamps.get(elem).is_some_and(|&s| s == self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(s.insert(100)); // auto-grow
        assert!(s.contains(100));
        assert!(!s.contains(99));
        assert!(!s.insert(100));
        assert!(s.remove(100));
        assert!(!s.remove(100));
        assert!(s.is_empty());
        assert!(!s.remove(100_000)); // out of range is a no-op
    }

    #[test]
    fn count_and_iter() {
        let s: BitSet = [1usize, 63, 64, 65, 200].into_iter().collect();
        assert_eq!(s.count(), 5);
        let elems: Vec<_> = s.iter().collect();
        assert_eq!(elems, vec![1, 63, 64, 65, 200]);
    }

    #[test]
    fn union() {
        let mut a: BitSet = [1usize, 2].into_iter().collect();
        let b: BitSet = [2usize, 300].into_iter().collect();
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "idempotent");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 300]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut s: BitSet = (0..100).collect();
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(50));
    }

    #[test]
    fn epoch_set_generations() {
        let mut v = EpochSet::new(4);
        v.begin();
        assert!(v.mark(0));
        assert!(v.is_marked(0));
        assert!(!v.mark(0));
        v.begin();
        assert!(!v.is_marked(0));
        assert!(v.mark(0));
        // Auto-grow beyond initial capacity.
        assert!(v.mark(1000));
        assert!(v.is_marked(1000));
        assert!(!v.is_marked(999));
    }

    /// Regression: the construction-time epoch must differ from the fresh
    /// stamp. Before the fix, a set that had never seen `begin()` sat at
    /// `epoch == E::default()`, so never-marked elements read as marked and
    /// `mark` reported them as duplicates.
    #[test]
    fn fresh_set_has_no_marks_before_any_begin() {
        let mut v = EpochSet::new(4);
        assert!(!v.is_marked(0));
        assert!(!v.is_marked(3));
        assert!(v.mark(0), "first mark of a fresh element must be fresh");
        assert!(!v.mark(0));
        assert!(v.is_marked(0));
    }

    /// Regression: growing during an active generation must not resurrect
    /// stale marks. Before the fix, growth in the pre-`begin` state handed
    /// every new slot the current epoch, making untouched elements marked.
    #[test]
    fn grow_during_active_epoch_does_not_resurrect_stale_marks() {
        let mut v = EpochSet::new(2);
        v.mark(1);
        v.grow(64);
        assert!(v.is_marked(1), "existing marks survive growth");
        for elem in [2, 10, 63] {
            assert!(!v.is_marked(elem), "grown slot {elem} must start unmarked");
        }
        assert!(v.mark(10));
        // Same invariant after an explicit generation bump.
        v.begin();
        v.mark(0);
        v.grow(256);
        assert!(v.is_marked(0));
        assert!(!v.is_marked(100));
    }

    #[test]
    fn epoch_set_grow_preserves_marks() {
        let mut v = EpochSet::new(2);
        v.begin();
        v.mark(1);
        v.grow(100);
        assert!(v.is_marked(1));
        assert!(!v.is_marked(50));
    }

    /// With `u8` stamps the epoch wraps after 255 generations; the physical
    /// reset must restart cleanly and leave no stale marks behind.
    #[test]
    fn tiny_epoch_wraparound_resets_physically() {
        let mut v: EpochSetImpl<u8> = EpochSetImpl::new(4);
        for gen in 0..600usize {
            v.begin();
            assert!(!v.is_marked(gen % 4), "stale mark survived into gen {gen}");
            assert!(v.mark(gen % 4));
            assert!(!v.mark(gen % 4));
            assert!(v.is_marked(gen % 4));
        }
        // 600 begins over u8: wraps at generation 256 and 511.
        assert_eq!(v.resets(), 2);
        let mut big: EpochSet = EpochSet::new(4);
        for _ in 0..600 {
            big.begin();
        }
        assert_eq!(big.resets(), 0, "u32 stamps never wrap in practice");
    }
}
