//! A fast, deterministic hasher for small keys.
//!
//! [`FxHasher`] implements the multiply-rotate scheme popularized by the
//! Firefox/rustc "FxHash" function. It is not collision resistant against
//! adversarial inputs, which is fine here: all keys are internally generated
//! dense ids or interned term handles. Compared to the SipHash-based default
//! hasher it removes a large constant factor from the solver's inner loops,
//! and — unlike `RandomState` — it is deterministic across runs, which keeps
//! experiment outputs reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, deterministic, non-cryptographic hasher for small keys.
///
/// # Examples
///
/// ```
/// use std::hash::{Hash, Hasher};
/// use bane_util::FxHasher;
///
/// let mut h = FxHasher::default();
/// 42u32.hash(&mut h);
/// let a = h.finish();
///
/// let mut h = FxHasher::default();
/// 42u32.hash(&mut h);
/// assert_eq!(a, h.finish(), "hashing is deterministic");
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&123u64), hash_of(&123u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a strong property, but catches degenerate implementations.
        let h0 = hash_of(&0u32);
        let h1 = hash_of(&1u32);
        let h2 = hash_of(&2u32);
        assert_ne!(h0, h1);
        assert_ne!(h1, h2);
        assert_ne!(h0, h2);
    }

    #[test]
    fn distinguishes_lengths() {
        assert_ne!(hash_of(&[1u8, 0]), hash_of(&[1u8, 0, 0]));
        assert_ne!(hash_of(&b"ab".as_slice()), hash_of(&b"ab\0".as_slice()));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&77], 154);

        let s: FxHashSet<u32> = (0..100).collect();
        assert!(s.contains(&42));
        assert!(!s.contains(&100));
    }

    #[test]
    fn byte_stream_chunking_matches_structure() {
        // 16 bytes exercise the exact-chunk path; 13 the remainder path.
        let long = vec![7u8; 16];
        let short = vec![7u8; 13];
        assert_ne!(hash_of(&long), hash_of(&short));
    }
}
