//! Support utilities shared across the `bane` workspace.
//!
//! The constraint solver in `bane-core` is extremely hash-map intensive (edge
//! dedup sets, term interning) and index intensive (adjacency lists keyed by
//! dense node ids). This crate provides:
//!
//! - [`hash`]: a fast, deterministic, non-cryptographic hasher ([`FxHasher`])
//!   and the [`FxHashMap`]/[`FxHashSet`] aliases built on it,
//! - [`idx`]: the [`newtype_index!`](crate::newtype_index) macro for dense
//!   `u32` index newtypes,
//! - [`bitset`]: a growable bit set ([`BitSet`]) and an epoch-stamped
//!   visited set ([`EpochSet`]) used by the online cycle-detection searches,
//! - [`rng`]: a tiny deterministic PRNG ([`SplitMix64`]) and a Fisher–Yates
//!   [`shuffle`](rng::shuffle) used to pick random variable orders,
//! - [`cast`]: checked zero-copy byte↔word slice reinterpretation used by
//!   the `bane-snap` on-disk snapshot reader.
//!
//! # Examples
//!
//! ```
//! use bane_util::{FxHashMap, BitSet};
//!
//! let mut m: FxHashMap<u32, &str> = FxHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m[&7], "seven");
//!
//! let mut bits = BitSet::new(100);
//! bits.insert(42);
//! assert!(bits.contains(42));
//! ```

pub mod bitset;
pub mod cast;
pub mod hash;
pub mod idx;
pub mod rng;
pub mod solset;

pub use bitset::{BitSet, EpochSet, EpochSetImpl, EpochStamp};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use rng::SplitMix64;
