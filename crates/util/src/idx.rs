//! Dense `u32` index newtypes.
//!
//! The solver identifies variables, terms, constructors and graph nodes by
//! dense indices. The [`newtype_index!`](crate::newtype_index) macro generates
//! a zero-cost newtype with the conversions and trait impls those ids need:
//! `Copy`, ordering, hashing, `Display`/`Debug`, and `index`/`from_index`
//! round-trips for vector-backed tables.

/// The trait implemented by all [`newtype_index!`](crate::newtype_index) types.
///
/// Provides conversion to and from `usize` positions so generic containers
/// (like [`IdxVec`]) can be keyed by typed ids.
pub trait Idx: Copy + Eq + Ord + std::hash::Hash + std::fmt::Debug + 'static {
    /// Creates an id from a dense position.
    ///
    /// # Panics
    ///
    /// Panics if `idx` exceeds `u32::MAX`.
    fn from_index(idx: usize) -> Self;

    /// Returns the dense position of this id.
    fn index(self) -> usize;
}

/// Declares a dense `u32` index newtype implementing [`Idx`].
///
/// # Examples
///
/// ```
/// use bane_util::newtype_index;
/// use bane_util::idx::Idx;
///
/// newtype_index! {
///     /// Identifies a set variable.
///     pub struct VarId("X");
/// }
///
/// let v = VarId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "X3");
/// ```
#[macro_export]
macro_rules! newtype_index {
    ($(#[$meta:meta])* $vis:vis struct $name:ident($prefix:literal);) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(transparent)]
        $vis struct $name(u32);

        impl $name {
            /// Creates an id with the given dense position.
            ///
            /// # Panics
            ///
            /// Panics if `idx` exceeds `u32::MAX`.
            #[inline]
            $vis fn new(idx: usize) -> Self {
                assert!(idx <= u32::MAX as usize, "index overflow");
                Self(idx as u32)
            }

            /// Returns the raw `u32` value.
            #[inline]
            $vis fn raw(self) -> u32 {
                self.0
            }

            /// Reinterprets a slice of raw `u32`s as typed ids, zero-copy.
            ///
            /// Every `u32` is a valid id, so this is total; it is the read
            /// path for serialized id columns (`bane-snap`) where the bytes
            /// on disk are exactly the raw values [`raw`](Self::raw) returns.
            // dead_code is allowed because private test-local instantiations
            // of this macro never call the slice views (real callers —
            // `bane-snap` — go through `pub` ids).
            #[inline]
            #[allow(dead_code)]
            $vis fn wrap_slice(raw: &[u32]) -> &[$name] {
                // SAFETY: repr(transparent) over u32 — identical layout,
                // and every bit pattern is a valid id.
                unsafe {
                    ::std::slice::from_raw_parts(raw.as_ptr().cast::<$name>(), raw.len())
                }
            }

            /// The inverse of [`wrap_slice`](Self::wrap_slice): views typed
            /// ids as their raw `u32` values, zero-copy.
            #[inline]
            #[allow(dead_code)]
            $vis fn unwrap_slice(ids: &[$name]) -> &[u32] {
                // SAFETY: repr(transparent) over u32.
                unsafe {
                    ::std::slice::from_raw_parts(ids.as_ptr().cast::<u32>(), ids.len())
                }
            }
        }

        impl $crate::idx::Idx for $name {
            #[inline]
            fn from_index(idx: usize) -> Self {
                Self::new(idx)
            }

            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

/// A vector keyed by a typed dense index.
///
/// # Examples
///
/// ```
/// use bane_util::newtype_index;
/// use bane_util::idx::IdxVec;
///
/// newtype_index! {
///     /// Example id.
///     pub struct NodeId("n");
/// }
///
/// let mut v: IdxVec<NodeId, &str> = IdxVec::new();
/// let a = v.push("alpha");
/// let b = v.push("beta");
/// assert_eq!(v[a], "alpha");
/// assert_eq!(v[b], "beta");
/// assert_eq!(v.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IdxVec<I: Idx, T> {
    raw: Vec<T>,
    _marker: std::marker::PhantomData<fn(I)>,
}

impl<I: Idx, T> IdxVec<I, T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self { raw: Vec::new(), _marker: std::marker::PhantomData }
    }

    /// Creates an empty vector with space for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        Self { raw: Vec::with_capacity(cap), _marker: std::marker::PhantomData }
    }

    /// Appends `value` and returns its id.
    pub fn push(&mut self, value: T) -> I {
        let id = I::from_index(self.raw.len());
        self.raw.push(value);
        id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Returns the element for `id`, if in bounds.
    pub fn get(&self, id: I) -> Option<&T> {
        self.raw.get(id.index())
    }

    /// Returns a mutable reference for `id`, if in bounds.
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        self.raw.get_mut(id.index())
    }

    /// Iterates over `(id, &value)` pairs in id order.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (I, &T)> {
        self.raw.iter().enumerate().map(|(i, v)| (I::from_index(i), v))
    }

    /// Iterates over values in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Iterates over values mutably in id order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.raw.iter_mut()
    }

    /// Iterates over all ids in order.
    pub fn indices(&self) -> impl Iterator<Item = I> + 'static {
        (0..self.raw.len()).map(I::from_index)
    }

    /// Returns the id the next `push` would produce.
    pub fn next_id(&self) -> I {
        I::from_index(self.raw.len())
    }

    /// Exposes the underlying storage.
    pub fn as_slice(&self) -> &[T] {
        &self.raw
    }
}

impl<I: Idx, T> Default for IdxVec<I, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Idx, T: std::fmt::Debug> std::fmt::Debug for IdxVec<I, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter_enumerated()).finish()
    }
}

impl<I: Idx, T> std::ops::Index<I> for IdxVec<I, T> {
    type Output = T;

    fn index(&self, id: I) -> &T {
        &self.raw[id.index()]
    }
}

impl<I: Idx, T> std::ops::IndexMut<I> for IdxVec<I, T> {
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.raw[id.index()]
    }
}

impl<I: Idx, T> FromIterator<T> for IdxVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        Self { raw: Vec::from_iter(iter), _marker: std::marker::PhantomData }
    }
}

impl<I: Idx, T> Extend<T> for IdxVec<I, T> {
    fn extend<It: IntoIterator<Item = T>>(&mut self, iter: It) {
        self.raw.extend(iter);
    }
}

impl<'a, I: Idx, T> IntoIterator for &'a IdxVec<I, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.raw.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    newtype_index! {
        /// Test id.
        pub struct TestId("t");
    }

    #[test]
    fn newtype_roundtrip() {
        let id = TestId::new(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.raw(), 17);
        assert_eq!(TestId::from_index(17), id);
        assert_eq!(format!("{id}"), "t17");
        assert_eq!(format!("{id:?}"), "t17");
    }

    #[test]
    fn newtype_ordering() {
        assert!(TestId::new(1) < TestId::new(2));
        assert_eq!(TestId::new(5), TestId::new(5));
    }

    #[test]
    #[should_panic(expected = "index overflow")]
    fn newtype_overflow_panics() {
        let _ = TestId::new(u32::MAX as usize + 1);
    }

    #[test]
    fn idxvec_push_and_index() {
        let mut v: IdxVec<TestId, String> = IdxVec::new();
        assert!(v.is_empty());
        let a = v.push("a".to_string());
        let b = v.push("b".to_string());
        assert_eq!(v.len(), 2);
        assert_eq!(v[a], "a");
        assert_eq!(v[b], "b");
        v[a].push('x');
        assert_eq!(v[a], "ax");
        assert_eq!(v.get(TestId::new(9)), None);
    }

    #[test]
    fn idxvec_iterators() {
        let v: IdxVec<TestId, u32> = (0..5).map(|i| i * 10).collect();
        let pairs: Vec<_> = v.iter_enumerated().map(|(i, &x)| (i.index(), x)).collect();
        assert_eq!(pairs, vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
        assert_eq!(v.indices().count(), 5);
        assert_eq!(v.next_id(), TestId::new(5));
        let sum: u32 = (&v).into_iter().sum();
        assert_eq!(sum, 100);
    }

    #[test]
    fn idxvec_extend() {
        let mut v: IdxVec<TestId, u32> = IdxVec::with_capacity(4);
        v.extend([1, 2, 3]);
        assert_eq!(v.as_slice(), &[1, 2, 3]);
    }
}
