//! The analytical model of Section 5, numerically and by simulation.
//!
//! The paper answers three questions analytically: why inductive form beats
//! standard form (Theorem 5.1: ≈2.5× fewer expected edge additions at the
//! benchmarks' densities), why partial online cycle elimination is fast
//! (Theorem 5.2: ≈2.2 expected reachable variables per chain search), and
//! why the elimination strategy works better for inductive form (transitive
//! variable-variable edges shorten cycles).
//!
//! [`theory`] evaluates the expectation series exactly; [`simulate`] samples
//! the model's random constraint graphs and runs the *real* solver on them,
//! so predicted and measured work can be compared (the `model` binary in
//! `bane-bench` prints both).
//!
//! # Examples
//!
//! ```
//! use bane_model::theory;
//!
//! let n = 10_000;
//! let ratio = theory::work_ratio(n, 2 * n / 3, 1.0 / n as f64);
//! assert!((2.0..3.0).contains(&ratio), "Theorem 5.1: ≈ 2.5, got {ratio}");
//!
//! let reach = theory::expected_reachable(n, 2.0 / n as f64);
//! assert!(reach < theory::reachable_limit(2.0), "Theorem 5.2 bound");
//! ```

pub mod simulate;
pub mod theory;

pub use simulate::{measured_work_ratio, run, SimConfig, SimResult};
pub use theory::{expected_reachable, expected_work_if, expected_work_sf, reachable_limit, work_ratio};
