//! Numeric evaluation of the Section 5 analytical model.
//!
//! The model considers random constraint graphs `G = (V, E)` with `n`
//! variable nodes and `m` source/sink nodes, where every ordered pair of
//! distinct nodes carries an edge with probability `p`, the variable order
//! is uniformly random, and only edge additions through *simple paths* are
//! counted (i.e. perfect cycle elimination — the `*-Oracle` regime).
//!
//! Expected numbers of edge additions:
//!
//! ```text
//! E(X_SF^{(c,X)})   = Σᵢ₌₁ⁿ⁻¹ C(n-1,i) · i! · p^{i+1}
//! E(X_SF^{(c,c')})  = Σᵢ₌₁ⁿ   C(n,i)   · i! · p^{i+1}
//! E(X_SF)           = m·n·E^{(c,X)} + m(m-1)·E^{(c,c')}
//!
//! E(X_IF^{(X₁,X₂)}) = Σᵢ₌₁ⁿ⁻² C(n-2,i) · i! · p^{i+1} · 2/((i+2)(i+1))
//! E(X_IF^{(X,c)})   = Σᵢ₌₁ⁿ⁻¹ C(n-1,i) · i! · p^{i+1} · 1/(i+1)
//! E(X_IF^{(c,c')})  = E(X_SF^{(c,c')})
//! E(X_IF)           = m(m-1)·E^{(c,c')} + 2mn·E^{(X,c)} + n(n-1)·E^{(X₁,X₂)}
//! ```
//!
//! (the `P_l(u,v)` factors are Lemma 5.3: the probability, over random
//! orders, that an edge is added through a given simple path with `l`
//! nodes). The chain-reachability bound of Theorem 5.2:
//!
//! ```text
//! E(R_X) ≤ Σᵢ₌₁ⁿ⁻¹ C(n-1,i) · i! · pⁱ / (i+1)!  <  (e^k − 1 − k)/k   for p = k/n.
//! ```
//!
//! All series are evaluated with iteratively updated falling-factorial
//! products, which is numerically stable for the sparse regimes used here
//! (`p` of order `1/n`).

/// `E(X_SF^{(c,X)})`: expected additions of one source→variable edge.
pub fn e_sf_cx(n: usize, p: f64) -> f64 {
    sum_paths(n.saturating_sub(1), p, |_| 1.0)
}

/// `E(X_SF^{(c,c')})` = `E(X_IF^{(c,c')})`: one source→sink edge.
pub fn e_cc(n: usize, p: f64) -> f64 {
    sum_paths(n, p, |_| 1.0)
}

/// `E(X_IF^{(X₁,X₂)})`: one variable→variable edge under inductive form.
pub fn e_if_xx(n: usize, p: f64) -> f64 {
    sum_paths(n.saturating_sub(2), p, |i| 2.0 / (((i + 2) * (i + 1)) as f64))
}

/// `E(X_IF^{(X,c)})` (and symmetrically `(c,X)`).
pub fn e_if_xc(n: usize, p: f64) -> f64 {
    sum_paths(n.saturating_sub(1), p, |i| 1.0 / ((i + 1) as f64))
}

/// `Σᵢ₌₁^max fall(max, i) · p^{i+1} · weight(i)` where
/// `fall(max, i) = max·(max-1)···(max-i+1) = C(max,i)·i!` counts ordered
/// choices of `i` intermediate variables.
fn sum_paths(max: usize, p: f64, weight: impl Fn(usize) -> f64) -> f64 {
    let mut sum = 0.0;
    // term_i = fall(max, i) · p^{i+1}
    let mut term = p; // i = 0 basis: fall = 1, p^1
    for i in 1..=max {
        term *= (max - i + 1) as f64 * p;
        if term < 1e-300 {
            break; // series has converged far below representable relevance
        }
        sum += term * weight(i);
    }
    sum
}

/// `E(X_SF)`: expected total edge additions under standard form.
pub fn expected_work_sf(n: usize, m: usize, p: f64) -> f64 {
    (m * n) as f64 * e_sf_cx(n, p) + (m * m.saturating_sub(1)) as f64 * e_cc(n, p)
}

/// `E(X_IF)`: expected total edge additions under inductive form.
pub fn expected_work_if(n: usize, m: usize, p: f64) -> f64 {
    (m * m.saturating_sub(1)) as f64 * e_cc(n, p)
        + (2 * m * n) as f64 * e_if_xc(n, p)
        + (n * n.saturating_sub(1)) as f64 * e_if_xx(n, p)
}

/// `E(X_SF) / E(X_IF)` — Theorem 5.1 says ≈ 2.5 for `p = 1/n`, `m/n = 2/3`.
pub fn work_ratio(n: usize, m: usize, p: f64) -> f64 {
    expected_work_sf(n, m, p) / expected_work_if(n, m, p)
}

/// Upper bound on `E(R_X)`: expected variables reachable from a node through
/// an order-decreasing chain.
pub fn expected_reachable(n: usize, p: f64) -> f64 {
    let max = n.saturating_sub(1);
    let mut sum = 0.0;
    // term_i = fall(max, i) · pⁱ ; weight 1/(i+1)!
    let mut term = 1.0;
    let mut fact = 1.0f64; // (i+1)!
    for i in 1..=max {
        term *= (max - i + 1) as f64 * p;
        fact *= (i + 1) as f64;
        let contribution = term / fact;
        sum += contribution;
        if contribution < 1e-16 && i > 4 {
            break;
        }
    }
    sum
}

/// The closed-form limit `(e^k − 1 − k)/k` of Theorem 5.2 for `p = k/n`.
pub fn reachable_limit(k: f64) -> f64 {
    (k.exp() - 1.0 - k) / k
}

/// The `√(πn/2)` approximation of equation (2), for reference output.
pub fn sqrt_pi_n_over_2(n: usize) -> f64 {
    (std::f64::consts::PI * n as f64 / 2.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Knuth's approximation (equation (2)): Σ C(n,i) i! n⁻ⁱ ≈ √(πn/2),
    /// with an O(1) correction that vanishes relatively as n grows.
    #[test]
    fn equation_2_approximation_holds() {
        let mut last_rel = f64::INFINITY;
        for n in [100usize, 1_000, 10_000, 100_000] {
            let p = 1.0 / n as f64;
            // e_cc(n, p)/p = Σᵢ fall(n,i) pⁱ ≈ √(πn/2) (the i=0 term is 1).
            let series = e_cc(n, p) / p + 1.0;
            let approx = sqrt_pi_n_over_2(n);
            let rel = (series - approx).abs() / approx;
            assert!(rel < 0.08, "n={n}: series {series} vs approx {approx}");
            assert!(rel < last_rel, "relative error shrinks with n");
            last_rel = rel;
        }
        assert!(last_rel < 0.002, "asymptotic agreement, got {last_rel}");
    }

    /// Theorem 5.1: for p = 1/n and m = 2n/3 the work ratio approaches
    /// 1 + n/m = 2.5 from below as the `2m·ln n + n` lower-order terms of
    /// E(X_IF) fade (at n ≈ 10³ the ratio is still ≈ 1.5).
    #[test]
    fn theorem_5_1_ratio() {
        let mut last = 0.0;
        for n in [1_000usize, 10_000, 100_000, 1_000_000, 10_000_000] {
            let m = 2 * n / 3;
            let ratio = work_ratio(n, m, 1.0 / n as f64);
            assert!(ratio > last, "ratio grows towards the limit (n={n})");
            assert!(ratio < 2.5, "ratio approaches 2.5 from below (n={n}: {ratio})");
            last = ratio;
        }
        assert!((last - 2.5).abs() < 0.2, "asymptotic ratio {last}");
    }

    /// Theorem 5.2: E(R_X) < (e² − 3)/2 ≈ 2.19 for p = 2/n, and the series
    /// converges to the closed form from below as n grows.
    #[test]
    fn theorem_5_2_reachability() {
        let limit = reachable_limit(2.0);
        assert!((limit - 2.194).abs() < 0.01);
        for n in [100usize, 1_000, 100_000] {
            let r = expected_reachable(n, 2.0 / n as f64);
            assert!(r < limit, "n={n}: {r} ≥ {limit}");
            assert!(r > 0.5, "n={n}: implausibly small {r}");
        }
        let r = expected_reachable(1_000_000, 2e-6);
        assert!((r - limit).abs() < 0.01, "large-n series {r} vs limit {limit}");
    }

    /// The model "relies on sparse graphs": E(R_X) climbs sharply past p=2/n.
    #[test]
    fn reachability_blows_up_when_dense() {
        let n = 10_000;
        let sparse = expected_reachable(n, 2.0 / n as f64);
        let denser = expected_reachable(n, 6.0 / n as f64);
        let dense = expected_reachable(n, 12.0 / n as f64);
        assert!(denser > 5.0 * sparse, "{sparse} -> {denser}");
        assert!(dense > 20.0 * denser, "{denser} -> {dense}");
    }

    /// In the paper's regime (p = 1/n, m = 2n/3) SF does strictly more
    /// expected work than IF, increasingly so with n. (With very few
    /// sources, IF's n(n-1) variable-variable term can dominate instead —
    /// that is exactly the IF-Plain pathology Figure 7 shows.)
    #[test]
    fn sf_dominates_if_in_paper_regime() {
        let mut last = 1.0;
        for n in [500usize, 5_000, 50_000] {
            let m = 2 * n / 3;
            let p = 1.0 / n as f64;
            let ratio = expected_work_sf(n, m, p) / expected_work_if(n, m, p);
            assert!(ratio > 1.0, "n={n}: ratio {ratio}");
            assert!(ratio > last, "n={n}: ratio should grow");
            last = ratio;
        }
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        assert_eq!(expected_work_sf(0, 0, 0.5), 0.0);
        assert_eq!(expected_work_if(1, 1, 0.5), 0.0);
        assert!(expected_reachable(1, 0.5) == 0.0);
    }
}
