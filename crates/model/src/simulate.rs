//! Monte-Carlo validation of the Section 5 model.
//!
//! Samples the model's random constraint graphs — `n` variable nodes, `m/2`
//! sources, `m/2` sinks, every eligible ordered pair carrying an edge with
//! probability `p` — feeds them to the *real* solver in both forms, and
//! measures the work actually performed. Sources and sinks are distinct
//! nullary constructors, exactly the degenerate constraint language the model
//! assumes (the resolution rules **R** add no edges; source–sink meetings
//! are counted as `(c, c')` additions).

#[cfg(test)]
use crate::theory;
use bane_core::cycle::ChainDir;
use bane_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one random-graph experiment.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Variable nodes.
    pub n: usize,
    /// Source/sink nodes (half each).
    pub m: usize,
    /// Edge probability.
    pub p: f64,
    /// PRNG seed.
    pub seed: u64,
}

/// Measurements from one solver run over a sampled graph.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimResult {
    /// Variable/source/sink edge-addition attempts plus `(c,c')` meetings —
    /// the model's "edge additions".
    pub work: u64,
    /// Mean variables reachable through decreasing predecessor chains in the
    /// final graph (Theorem 5.2's `E(R_X)`), inductive form only.
    pub mean_reach: f64,
    /// Maximum of the same.
    pub max_reach: usize,
    /// Variables eliminated by online cycle elimination.
    pub eliminated: u64,
}

/// Samples a graph per `config` and solves it under `solver_config`.
pub fn run(config: SimConfig, solver_config: SolverConfig) -> SimResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut solver = Solver::new(solver_config);

    let vars: Vec<Var> = (0..config.n).map(|_| solver.fresh_var()).collect();
    let half = config.m / 2;
    let sources: Vec<TermId> = (0..half)
        .map(|i| {
            let c = solver.register_nullary(format!("s{i}"));
            solver.term(c, vec![])
        })
        .collect();
    let sinks: Vec<TermId> = (0..half)
        .map(|i| {
            let c = solver.register_nullary(format!("t{i}"));
            solver.term(c, vec![])
        })
        .collect();

    // Initial edges, each ordered pair with probability p, drawn by
    // geometric gap sampling (O(expected edges) instead of O(pairs) —
    // these graphs are very sparse). Constraints are collected first and
    // then added in random order (the online detector's hit rate depends on
    // insertion order; random is the model's regime).
    let n = config.n;
    let mut constraints: Vec<(SetExpr, SetExpr)> = Vec::new();
    sample_sparse(&mut rng, (n * n.saturating_sub(1)) as u64, config.p, |idx| {
        let i = (idx / (n as u64 - 1)) as usize;
        let jj = (idx % (n as u64 - 1)) as usize;
        let j = jj + usize::from(jj >= i);
        constraints.push((vars[i].into(), vars[j].into()));
    });
    sample_sparse(&mut rng, (half * n) as u64, config.p, |idx| {
        let s = sources[(idx / n as u64) as usize];
        let v = vars[(idx % n as u64) as usize];
        constraints.push((s.into(), v.into()));
    });
    sample_sparse(&mut rng, (n * half) as u64, config.p, |idx| {
        let v = vars[(idx / half as u64) as usize];
        let t = sinks[(idx % half as u64) as usize];
        constraints.push((v.into(), t.into()));
    });
    // Shuffle insertion order.
    for i in (1..constraints.len()).rev() {
        let j = rng.gen_range(0..=i);
        constraints.swap(i, j);
    }
    for (l, r) in constraints {
        solver.add(l, r);
    }
    solver.solve();

    let stats = *solver.stats();
    let (mean_reach, max_reach) = if solver.config().form == Form::Inductive {
        solver.chain_reach(ChainDir::Pred)
    } else {
        (0.0, 0)
    };
    SimResult {
        work: stats.work + stats.term_constraints,
        mean_reach,
        max_reach,
        eliminated: stats.vars_eliminated,
    }
}

/// Visits each index in `0..total` independently with probability `p`,
/// using geometric gaps so the cost is proportional to the number of hits.
fn sample_sparse(rng: &mut StdRng, total: u64, p: f64, mut hit: impl FnMut(u64)) {
    if total == 0 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..total {
            hit(i);
        }
        return;
    }
    let ln_q = (1.0 - p).ln();
    let mut i = 0u64;
    loop {
        let u: f64 = rng.gen::<f64>();
        if u <= 0.0 {
            break; // ln(0) would skip past the end anyway
        }
        let skip = (u.ln() / ln_q).floor();
        if !skip.is_finite() || skip >= (total - i) as f64 {
            break;
        }
        i += skip as u64;
        hit(i);
        i += 1;
        if i >= total {
            break;
        }
    }
}

/// Averages `rounds` independent samples of SF-vs-IF work (with online
/// elimination off, approximating the model's simple-path counting on these
/// sparse, almost-acyclic graphs).
pub fn measured_work_ratio(n: usize, m: usize, p: f64, rounds: usize, seed: u64) -> (f64, f64) {
    let mut sf_total = 0.0;
    let mut if_total = 0.0;
    for r in 0..rounds {
        let config = SimConfig { n, m, p, seed: seed.wrapping_add(r as u64) };
        sf_total += run(config, SolverConfig::sf_plain()).work as f64;
        if_total += run(config, SolverConfig::if_plain()).work as f64;
    }
    (sf_total / rounds as f64, if_total / rounds as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The measured SF/IF work ratio tracks Theorem 5.1's prediction within
    /// a factor on the paper's regime (p = 1/n, m = 2n/3).
    #[test]
    fn simulation_tracks_theorem_5_1() {
        // The model counts edge additions per *simple path*, while a
        // dedup-based solver counts one event per length-2 derivation, so
        // the measurement sits below the prediction by a stable factor —
        // but it grows with n just as the theorem's ratio does.
        let ratio_at = |n: usize, seed: u64| {
            let m = 2 * n / 3;
            let p = 1.0 / n as f64;
            let (sf, iff) = measured_work_ratio(n, m, p, 4, seed);
            (sf / iff, theory::work_ratio(n, m, p))
        };
        let (small, _) = ratio_at(1_000, 7);
        let (measured, predicted) = ratio_at(4_000, 7);
        assert!(measured > 1.2, "SF should do clearly more work, got {measured:.2}");
        assert!(measured > small, "ratio grows with n: {small:.2} -> {measured:.2}");
        assert!(
            measured / predicted > 0.4 && measured / predicted < 1.5,
            "measured {measured:.2} vs predicted {predicted:.2}"
        );
    }

    /// The measured mean chain reachability stays near Theorem 5.2's bound
    /// at final density p ≈ 2/n.
    #[test]
    fn simulation_tracks_theorem_5_2() {
        let n = 800;
        let config = SimConfig { n, m: 100, p: 2.0 / n as f64, seed: 5 };
        let result = run(config, SolverConfig::if_online());
        let limit = theory::reachable_limit(2.0);
        assert!(
            result.mean_reach < 2.0 * limit,
            "mean reach {} far above the bound {limit}",
            result.mean_reach
        );
        assert!(result.mean_reach > 0.1, "implausibly small reach");
    }

    /// Online elimination finds cycles in random graphs dense enough to
    /// have them.
    #[test]
    fn online_elimination_fires_on_cyclic_graphs() {
        let n = 300;
        let config = SimConfig { n, m: 20, p: 3.0 / n as f64, seed: 11 };
        let result = run(config, SolverConfig::if_online());
        assert!(result.eliminated > 0, "a 3/n random digraph has cycles");
    }

    /// Determinism: same seed, same measurements.
    #[test]
    fn runs_are_reproducible() {
        let config = SimConfig { n: 200, m: 60, p: 0.01, seed: 42 };
        let a = run(config, SolverConfig::if_online());
        let b = run(config, SolverConfig::if_online());
        assert_eq!(a.work, b.work);
        assert_eq!(a.eliminated, b.eliminated);
    }
}
