//! Points-to behavior of the extended C constructs: ternaries merge
//! branches, initializer lists seed array elements, comma takes the right
//! value, switch/do-while bodies are analyzed.

use bane_cfront::parse::parse;
use bane_core::prelude::SolverConfig;
use bane_points_to::{andersen, steensgaard};
use std::collections::BTreeSet;

fn pts(src: &str, name: &str) -> BTreeSet<String> {
    let program = parse(src).expect("program parses");
    let mut analysis = andersen::analyze(&program, SolverConfig::if_online());
    let id = analysis.locs.by_name(name).unwrap_or_else(|| panic!("location {name}"));
    let graph = analysis.points_to();
    graph.targets(id).iter().map(|&t| analysis.locs.get(t).name.clone()).collect()
}

fn set(names: &[&str]) -> BTreeSet<String> {
    names.iter().map(|s| s.to_string()).collect()
}

#[test]
fn ternary_merges_both_branches() {
    let m = pts(
        "int x, y;\nint *p;\nvoid f(int c) { p = c ? &x : &y; }",
        "p",
    );
    assert_eq!(m, set(&["x", "y"]));
}

#[test]
fn comma_takes_the_right_value() {
    let m = pts(
        "int x, y;\nint *p, *q;\nvoid f(void) { p = (q = &x, &y); }",
        "p",
    );
    assert_eq!(m, set(&["y"]));
    let q = pts(
        "int x, y;\nint *p, *q;\nvoid f(void) { p = (q = &x, &y); }",
        "q",
    );
    assert_eq!(q, set(&["x"]));
}

#[test]
fn initializer_lists_seed_array_elements() {
    let src = "int x, y;\nint *ps[2] = {&x, &y};\nint **q;\nvoid f(void) { q = ps; }";
    assert_eq!(pts(src, "ps[]"), set(&["x", "y"]));
    assert_eq!(pts(src, "q"), set(&["ps[]"]));
}

#[test]
fn scalar_initializers_still_assign() {
    let src = "int x;\nint *p = &x;\nvoid f(void) { }";
    assert_eq!(pts(src, "p"), set(&["x"]));
}

#[test]
fn local_initializer_lists() {
    let src = "int x, y;\nvoid f(void) { int *local[2] = {&x, &y}; int **q; q = local; }";
    assert_eq!(pts(src, "f::local[]"), set(&["x", "y"]));
}

#[test]
fn switch_and_do_while_bodies_flow() {
    let src = "int x, y;\nint *p;\n\
         void f(int n) {\n\
           switch (n) {\n\
           case 0: p = &x; break;\n\
           default: p = &y;\n\
           }\n\
           do { p = p; } while (n--);\n\
         }";
    assert_eq!(pts(src, "p"), set(&["x", "y"]));
}

#[test]
fn compound_assign_keeps_pointer_targets() {
    // p += 1 desugars to p = p + 1; pointer arithmetic keeps targets.
    let src = "int buf[4];\nint *p;\nvoid f(void) { p = buf; p += 1; }";
    assert_eq!(pts(src, "p"), set(&["buf[]"]));
}

#[test]
fn steensgaard_handles_extended_constructs() {
    let src = "int x, y;\nint *p;\nvoid f(int c) { p = c ? &x : &y; }";
    let st = steensgaard::analyze(&parse(src).unwrap());
    let p = st.by_name("p").unwrap();
    let targets: BTreeSet<&str> = st.targets(p).iter().map(|&t| st.name(t)).collect();
    assert!(targets.contains("x") && targets.contains("y"));
}

#[test]
fn all_configs_agree_on_extended_program() {
    let src = "int a, b, c;\n\
         int *p, *q;\n\
         int *sel(int k, int *u, int *v) { return k ? u : v; }\n\
         void f(int k) {\n\
           int *arr[2] = {&a, &b};\n\
           p = arr[0];\n\
           q = sel(k, p, &c);\n\
           switch (k) { case 1: p = q; break; default: q = p; }\n\
         }";
    let program = parse(src).unwrap();
    let reference = {
        let mut an = andersen::analyze(&program, SolverConfig::sf_plain());
        let g = an.points_to();
        (0..an.locs.len())
            .map(|i| g.targets(bane_points_to::LocId::new(i)).to_vec())
            .collect::<Vec<_>>()
    };
    for config in [SolverConfig::if_plain(), SolverConfig::sf_online(), SolverConfig::if_online()]
    {
        let mut an = andersen::analyze(&program, config);
        let g = an.points_to();
        let got: Vec<_> = (0..an.locs.len())
            .map(|i| g.targets(bane_points_to::LocId::new(i)).to_vec())
            .collect();
        assert_eq!(got, reference, "{config:?}");
    }
}
