//! Steensgaard's unification-based points-to analysis (the baseline the
//! paper's related work compares against, \[Ste96\]/\[SH97\]).
//!
//! Where Andersen's analysis keeps *inclusion* constraints (directional
//! flow), Steensgaard *unifies*: an assignment `x = y` merges the points-to
//! classes of `x` and `y`'s values. The result is near-linear time
//! (union-find) but much less precise — every location's points-to set is an
//! entire equivalence class. We implement it over the same AST so the
//! benchmark harness can report the precision/time trade-off.

use crate::location::LocId;
use bane_cfront::ast::*;
use bane_util::FxHashMap;

/// An equivalence-class node (ECR) id.
type Ecr = usize;

/// The result of a Steensgaard run.
#[derive(Clone, Debug)]
pub struct SteensgaardResult {
    /// Display names per location, aligned with [`LocId`] assignment order
    /// (declaration order; not guaranteed to match Andersen's table).
    names: Vec<String>,
    /// Points-to sets per location, as sorted location indices.
    targets: Vec<Vec<LocId>>,
    /// Number of union operations performed.
    pub unions: usize,
}

impl SteensgaardResult {
    /// The points-to set of location `id`.
    pub fn targets(&self, id: LocId) -> &[LocId] {
        &self.targets[id.raw() as usize]
    }

    /// The display name of location `id`.
    pub fn name(&self, id: LocId) -> &str {
        &self.names[id.raw() as usize]
    }

    /// Finds a location by name.
    pub fn by_name(&self, name: &str) -> Option<LocId> {
        self.names.iter().position(|n| n == name).map(LocId::new)
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether there are no locations.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Total points-to edges (for precision comparison with Andersen).
    pub fn total_edges(&self) -> usize {
        self.targets.iter().map(Vec::len).sum()
    }

    /// Mean points-to set size over locations with non-empty sets.
    pub fn mean_nonempty_size(&self) -> f64 {
        let nonempty: Vec<usize> =
            self.targets.iter().map(Vec::len).filter(|&n| n > 0).collect();
        if nonempty.is_empty() {
            0.0
        } else {
            nonempty.iter().sum::<usize>() as f64 / nonempty.len() as f64
        }
    }
}

/// Runs Steensgaard's analysis on `program`.
pub fn analyze(program: &Program) -> SteensgaardResult {
    let mut st = Steens::default();
    st.program(program);
    st.finish()
}

#[derive(Clone, Debug)]
struct FnSig {
    params: Vec<Ecr>,
    ret: Ecr,
}

#[derive(Default)]
struct Steens {
    parent: Vec<Ecr>,
    /// pts(class) — the class of values stored in this class of locations.
    pts: FxHashMap<Ecr, Ecr>,
    /// Function signature attached to a class of function values.
    sigs: FxHashMap<Ecr, FnSig>,
    /// Location cells (ECR per named location), with names.
    loc_names: Vec<String>,
    loc_cells: Vec<Ecr>,
    scopes: Vec<FxHashMap<String, usize>>,
    fn_of: FxHashMap<String, usize>,
    current_ret: Option<Ecr>,
    current_fn: String,
    str_count: usize,
    unions: usize,
}

impl Steens {
    fn fresh(&mut self) -> Ecr {
        let e = self.parent.len();
        self.parent.push(e);
        e
    }

    fn find(&mut self, mut e: Ecr) -> Ecr {
        while self.parent[e] != e {
            let gp = self.parent[self.parent[e]];
            self.parent[e] = gp;
            e = gp;
        }
        e
    }

    /// Unifies two classes, recursively merging their points-to successors
    /// and function signatures (Steensgaard's `cjoin`).
    ///
    /// Class data is captured while `a` and `b` are still the valid map keys,
    /// the merged entries are reinstalled under the surviving representative,
    /// and only then do the recursive unifications run — so re-entrant joins
    /// always see consistent maps.
    fn join(&mut self, a: Ecr, b: Ecr) {
        let (a, b) = (self.find(a), self.find(b));
        if a == b {
            return;
        }
        self.unions += 1;
        let pa = self.pts.remove(&a);
        let pb = self.pts.remove(&b);
        let sa = self.sigs.remove(&a);
        let sb = self.sigs.remove(&b);
        self.parent[b] = a;

        if let Some(x) = pa.or(pb) {
            self.pts.insert(a, x);
        }
        if let Some(sig) = sa.clone().or(sb.clone()) {
            self.sigs.insert(a, sig);
        }
        // Deferred recursive unifications.
        if let (Some(x), Some(y)) = (pa, pb) {
            self.join(x, y);
        }
        if let (Some(x), Some(y)) = (sa, sb) {
            for (p, q) in x.params.iter().zip(&y.params) {
                self.join(*p, *q);
            }
            self.join(x.ret, y.ret);
        }
    }

    /// The points-to successor of a class, created on demand.
    fn pts_of(&mut self, e: Ecr) -> Ecr {
        let r = self.find(e);
        if let Some(&p) = self.pts.get(&r) {
            return p;
        }
        let p = self.fresh();
        self.pts.insert(r, p);
        p
    }

    fn new_loc(&mut self, name: String) -> usize {
        let cell = self.fresh();
        let idx = self.loc_names.len();
        self.loc_names.push(name);
        self.loc_cells.push(cell);
        idx
    }

    fn bind(&mut self, name: &str, loc: usize) {
        self.scopes.last_mut().expect("scope stack").insert(name.to_string(), loc);
    }

    fn lookup_or_implicit(&mut self, name: &str) -> usize {
        if let Some(&loc) = self.scopes.iter().rev().find_map(|s| s.get(name)) {
            return loc;
        }
        let loc = self.new_loc(name.to_string());
        self.scopes[0].insert(name.to_string(), loc);
        loc
    }

    // -- program ------------------------------------------------------------

    fn program(&mut self, program: &Program) {
        self.scopes.push(FxHashMap::default());
        for g in &program.globals {
            let loc = self.new_loc(g.name.clone());
            self.bind(&g.name, loc);
            if g.ty.array.is_some() {
                let elem = self.new_loc(format!("{}[]", g.name));
                let cell = self.loc_cells[loc];
                let elem_cell = self.loc_cells[elem];
                let p = self.pts_of(cell);
                self.join(p, elem_cell);
            }
        }
        for f in &program.functions {
            self.declare_fn(f);
        }
        for g in &program.globals {
            if let Some(init) = &g.init {
                let loc = self.lookup_or_implicit(&g.name);
                self.init_decl(loc, init);
            }
        }
        for f in &program.functions {
            self.fn_body(f);
        }
    }

    fn declare_fn(&mut self, f: &Function) {
        if self.fn_of.contains_key(&f.name) {
            return;
        }
        let loc = self.new_loc(f.name.clone());
        self.bind(&f.name.clone(), loc);
        self.fn_of.insert(f.name.clone(), loc);
        let cell = self.loc_cells[loc];
        let fval = self.pts_of(cell);
        let params: Vec<Ecr> = f
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let pname =
                    if p.name.is_empty() { format!("arg{i}") } else { p.name.clone() };
                let ploc = self.new_loc(format!("{}::{}", f.name, pname));
                // The signature carries the parameter's *content* class:
                // argument values unify with what the parameter holds.
                let cell = self.loc_cells[ploc];
                self.pts_of(cell)
            })
            .collect();
        let ret = self.fresh();
        let key = self.find(fval);
        self.sigs.insert(key, FnSig { params, ret });
    }

    fn fn_body(&mut self, f: &Function) {
        self.scopes.push(FxHashMap::default());
        // Re-discover parameter locations by name prefix.
        for (i, p) in f.params.iter().enumerate() {
            if p.name.is_empty() {
                continue;
            }
            let pname = format!("{}::{}", f.name, p.name);
            if let Some(idx) = self.loc_names.iter().position(|n| *n == pname) {
                self.bind(&p.name.clone(), idx);
            }
            let _ = i;
        }
        let floc = self.fn_of[&f.name];
        let cell = self.loc_cells[floc];
        let fval = self.pts_of(cell);
        let key = self.find(fval);
        self.current_ret = self.sigs.get(&key).map(|s| s.ret);
        self.current_fn = f.name.clone();
        self.stmts(&f.body);
        self.current_ret = None;
        self.scopes.pop();
    }

    fn stmts(&mut self, body: &[Stmt]) {
        self.scopes.push(FxHashMap::default());
        for s in body {
            self.stmt(s);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Decl(d) => {
                let loc = self.new_loc(format!("{}::{}", self.current_fn, d.name));
                self.bind(&d.name.clone(), loc);
                if d.ty.array.is_some() {
                    let elem = self.new_loc(format!("{}::{}[]", self.current_fn, d.name));
                    let cell = self.loc_cells[loc];
                    let elem_cell = self.loc_cells[elem];
                    let p = self.pts_of(cell);
                    self.join(p, elem_cell);
                }
                if let Some(init) = &d.init {
                    self.init_decl(loc, init);
                }
            }
            Stmt::Expr(e) => {
                self.lvalue(e);
            }
            Stmt::If(c, t, e) => {
                self.lvalue(c);
                self.stmts(t);
                self.stmts(e);
            }
            Stmt::While(c, b) => {
                self.lvalue(c);
                self.stmts(b);
            }
            Stmt::For(i, c, s, b) => {
                for part in [i, c, s].into_iter().flatten() {
                    self.lvalue(part);
                }
                self.stmts(b);
            }
            Stmt::Return(Some(e)) => {
                let lv = self.lvalue(e);
                let rv = self.pts_of(lv);
                if let Some(ret) = self.current_ret {
                    self.join(ret, rv);
                }
            }
            Stmt::DoWhile(b, c) => {
                self.stmts(b);
                self.lvalue(c);
            }
            Stmt::Switch(e, cases) => {
                self.lvalue(e);
                for case in cases {
                    self.stmts(&case.body);
                }
            }
            Stmt::Break | Stmt::Continue | Stmt::Goto(_) | Stmt::Label(_) => {}
            Stmt::Return(None) => {}
            Stmt::Block(b) => self.stmts(b),
        }
    }

    /// A declaration initializer: element values of an initializer list
    /// flow into the declared location's value class (arrays are already
    /// collapsed in the unification view); plain initializers assign.
    fn init_decl(&mut self, loc: usize, init: &Expr) {
        let lv = self.loc_cells[loc];
        match init {
            Expr::InitList(items) => {
                // For arrays, the elements live one indirection down.
                let target = self.pts_of(lv);
                for item in items {
                    let li = self.lvalue(item);
                    let (pi, pt) = (self.pts_of(li), self.pts_of(target));
                    self.join(pt, pi);
                }
            }
            _ => {
                let rv = self.lvalue(init);
                let (a, b) = (self.pts_of(lv), self.pts_of(rv));
                self.join(a, b);
            }
        }
    }

    /// Evaluates `e` to the ECR of its *location* (L-value class).
    fn lvalue(&mut self, e: &Expr) -> Ecr {
        match e {
            Expr::Id(name) => {
                let loc = self.lookup_or_implicit(name);
                self.loc_cells[loc]
            }
            Expr::Int(_) | Expr::Null => self.fresh(),
            Expr::Sizeof(inner) => {
                self.lvalue(inner);
                self.fresh()
            }
            Expr::Str(_) => {
                let id = self.str_count;
                self.str_count += 1;
                let loc = self.new_loc(format!("\"str{id}\""));
                let holder = self.fresh();
                let cell = self.loc_cells[loc];
                let p = self.pts_of(holder);
                self.join(p, cell);
                holder
            }
            Expr::Unary(UnOp::AddrOf, inner) => {
                if let Expr::Id(name) = inner.as_ref() {
                    if self.fn_of.contains_key(name) {
                        return self.lvalue(inner);
                    }
                }
                let lv = self.lvalue(inner);
                let holder = self.fresh();
                let p = self.pts_of(holder);
                self.join(p, lv);
                holder
            }
            Expr::Unary(UnOp::Deref, inner) => {
                let lv = self.lvalue(inner);
                self.pts_of(lv)
            }
            Expr::Unary(_, inner) => {
                self.lvalue(inner);
                self.fresh()
            }
            Expr::Binary(op, a, b) => {
                let la = self.lvalue(a);
                let lb = self.lvalue(b);
                match op {
                    BinOp::Add | BinOp::Sub => {
                        // Unification smears both sides together.
                        let holder = self.fresh();
                        let (pa, ph) = (self.pts_of(la), self.pts_of(holder));
                        self.join(ph, pa);
                        let (pb, ph2) = (self.pts_of(lb), self.pts_of(holder));
                        self.join(ph2, pb);
                        holder
                    }
                    _ => self.fresh(),
                }
            }
            Expr::Assign(l, r) => {
                let ll = self.lvalue(l);
                let lr = self.lvalue(r);
                let (a, b) = (self.pts_of(ll), self.pts_of(lr));
                self.join(a, b);
                ll
            }
            Expr::Call(callee, args) => {
                let lc = self.lvalue(callee);
                let fval = self.pts_of(lc);
                let key = self.find(fval);
                let sig = match self.sigs.get(&key) {
                    Some(s) => s.clone(),
                    None => {
                        let params: Vec<Ecr> = (0..args.len()).map(|_| self.fresh()).collect();
                        let ret = self.fresh();
                        let sig = FnSig { params, ret };
                        let key = self.find(fval);
                        self.sigs.insert(key, sig.clone());
                        sig
                    }
                };
                for (arg, &param) in args.iter().zip(&sig.params) {
                    let la = self.lvalue(arg);
                    let ra = self.pts_of(la);
                    self.join(param, ra);
                }
                for arg in args.iter().skip(sig.params.len()) {
                    self.lvalue(arg);
                }
                let holder = self.fresh();
                let p = self.pts_of(holder);
                self.join(p, sig.ret);
                holder
            }
            Expr::Index(base, idx) => {
                self.lvalue(idx);
                let lb = self.lvalue(base);
                self.pts_of(lb)
            }
            Expr::Member(base, _field, arrow) => {
                let lb = self.lvalue(base);
                if *arrow {
                    self.pts_of(lb)
                } else {
                    lb
                }
            }
            Expr::Cast(_, inner) => self.lvalue(inner),
            Expr::Ternary(c, t, f) => {
                self.lvalue(c);
                let lt = self.lvalue(t);
                let lf = self.lvalue(f);
                let holder = self.fresh();
                let (pt, ph) = (self.pts_of(lt), self.pts_of(holder));
                self.join(ph, pt);
                let (pf, ph2) = (self.pts_of(lf), self.pts_of(holder));
                self.join(ph2, pf);
                holder
            }
            Expr::Comma(a, b) => {
                self.lvalue(a);
                self.lvalue(b)
            }
            Expr::InitList(items) => {
                let holder = self.fresh();
                for item in items {
                    let li = self.lvalue(item);
                    let (pi, ph) = (self.pts_of(li), self.pts_of(holder));
                    self.join(ph, pi);
                }
                holder
            }
        }
    }

    fn finish(mut self) -> SteensgaardResult {
        // Group locations by the class of their *cell*; pts(x) = named
        // locations whose cell is in pts(class of x).
        let n = self.loc_names.len();
        let mut members: FxHashMap<Ecr, Vec<LocId>> = FxHashMap::default();
        for i in 0..n {
            let cell = self.loc_cells[i];
            let rep = self.find(cell);
            members.entry(rep).or_default().push(LocId::new(i));
        }
        // A function's *value* class stands for the function itself, so a
        // pointer holding that value points to the function's location
        // (mirroring Andersen's lam-term aliasing).
        let fns: Vec<(String, usize)> =
            self.fn_of.iter().map(|(k, &v)| (k.clone(), v)).collect();
        for (_, loc) in fns {
            let cell = self.loc_cells[loc];
            let fval = self.pts_of(cell);
            let rep = self.find(fval);
            let entry = members.entry(rep).or_default();
            if !entry.contains(&LocId::new(loc)) {
                entry.push(LocId::new(loc));
            }
        }
        let mut targets = Vec::with_capacity(n);
        for i in 0..n {
            let cell = self.loc_cells[i];
            let rep = self.find(cell);
            let mut out = Vec::new();
            if let Some(&p) = self.pts.get(&rep) {
                let prep = self.find(p);
                if let Some(list) = members.get(&prep) {
                    out = list.clone();
                }
            }
            out.sort_unstable();
            targets.push(out);
        }
        SteensgaardResult { names: self.loc_names, targets, unions: self.unions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::andersen;
    use bane_cfront::parse::parse;
    use bane_core::prelude::SolverConfig;

    fn targets_of(result: &SteensgaardResult, name: &str) -> Vec<String> {
        let id = result.by_name(name).unwrap_or_else(|| panic!("location {name}"));
        result.targets(id).iter().map(|&t| result.name(t).to_string()).collect()
    }

    #[test]
    fn simple_address_of() {
        let p = parse("int x;\nint *p;\nvoid f(void) { p = &x; }").unwrap();
        let r = analyze(&p);
        assert_eq!(targets_of(&r, "p"), vec!["x"]);
    }

    #[test]
    fn unification_merges_distinct_targets() {
        // Andersen: p → {x}, q → {y}. Steensgaard: the assignment r = p;
        // r = q unifies x and y's classes, so both sets become {x, y}.
        let src = "int x, y;\nint *p, *q, *r;\n\
             void f(void) { p = &x; q = &y; r = p; r = q; }";
        let program = parse(src).unwrap();
        let st = analyze(&program);
        let mut pt = targets_of(&st, "p");
        pt.sort();
        assert_eq!(pt, vec!["x", "y"], "unification smears");

        // Andersen on the same program keeps them apart.
        let mut an = andersen::analyze(&program, SolverConfig::if_online());
        let graph = an.points_to();
        let p_id = an.locs.by_name("p").unwrap();
        assert_eq!(graph.targets(p_id).len(), 1, "Andersen stays precise");
    }

    #[test]
    fn calls_unify_params() {
        let src = "int g;\n\
             void set(int *p) { *p = 1; }\n\
             void main(void) { set(&g); }";
        let st = analyze(&parse(src).unwrap());
        assert_eq!(targets_of(&st, "set::p"), vec!["g"]);
    }

    #[test]
    fn function_pointers_via_sig() {
        let src = "int g;\n\
             int *get(void) { return &g; }\n\
             int *(*fp)(void);\n\
             int *r;\n\
             void main(void) { fp = get; r = fp(); }";
        let st = analyze(&parse(src).unwrap());
        assert_eq!(targets_of(&st, "r"), vec!["g"]);
    }

    #[test]
    fn precision_is_never_better_than_andersen() {
        // On a program with independent pointer chains, Steensgaard's total
        // edge count is at least Andersen's.
        let src = "int a, b, c;\n\
             int *p1, *p2, *p3, *t;\n\
             void f(void) { p1 = &a; p2 = &b; p3 = &c; t = p1; t = p2; t = p3; }";
        let program = parse(src).unwrap();
        let st = analyze(&program);
        let mut an = andersen::analyze(&program, SolverConfig::if_online());
        let graph = an.points_to();
        assert!(st.total_edges() >= graph.total_edges());
        assert!(st.mean_nonempty_size() >= graph.mean_nonempty_size());
    }
}
