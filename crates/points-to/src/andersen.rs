//! Andersen's points-to analysis as inclusion constraints (Section 3).
//!
//! Every expression is assigned a set expression denoting its *L-value* (the
//! set of locations it may designate); R-values are obtained by projecting
//! through the covariant `get` field of `ref`, and assignment writes through
//! the contravariant `set` field. The rules follow Figure 6 of the paper
//! (and \[FA97\] for the full language):
//!
//! | construct | constraints |
//! |---|---|
//! | variable `x` | `τ_x = ref(loc_x, X_x, X̄_x)` |
//! | `&e` | `τ = ref(1, τ_e, τ̄_e)` (for functions, `&f ≡ f`) |
//! | `*e` | fresh `T`, `τ_e ⊆ ref(1, T, 0̄)`, `τ = T` |
//! | `e₁ = e₂` | `τ₂ ⊆ ref(1, T₂, 0̄)` and `τ₁ ⊆ ref(1, 1, T̄₂)` |
//! | `e(a₁…aₖ)` | `T_f ⊆ lam_k(Ā₁,…,Āₖ, T_r)` with `Aᵢ` the argument R-values |
//! | literals / `NULL` | `ref(1, 0, 1̄)` — points to nothing, absorbs writes |
//!
//! Arrays are collapsed onto a single element location whose `ref` is seeded
//! into the array variable's contents (so both array decay `p = a` and
//! indexing `a[i]` behave correctly); `struct` members are field-insensitive;
//! casts are transparent. Constraint generation is purely syntax-directed
//! and deterministic, which is what lets the oracle experiments replay the
//! exact same variable-creation sequence.

use crate::location::{CallSite, FnInfo, LocId, LocKind, Location, Locations};
use bane_cfront::ast::*;
use bane_core::cons::Con;
use bane_core::prelude::*;
use bane_util::FxHashMap;

/// Counters describing the generated constraint system.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Abstract locations created.
    pub locations: usize,
    /// Constraints handed to the solver.
    pub constraints: u64,
    /// Identifiers that had to be treated as implicit globals.
    pub implicit_globals: usize,
}

/// Generates Andersen constraints for `program` into any
/// [`ConstraintBuilder`] — a [`Solver`], a `FrontierSolver`, or a plain
/// [`Problem`] to be handed to an engine later.
///
/// Does **not** solve; callers time [`Engine::solve`] separately (that is the
/// quantity the paper's tables report). Returns the location table.
pub fn generate<B: ConstraintBuilder>(program: &Program, solver: &mut B) -> (Locations, GenStats) {
    let mut gen = Gen::new(solver);
    gen.program(program);
    let stats = gen.stats;
    (gen.locs, stats)
}

/// A complete analysis: generated, solved, ready for extraction.
#[derive(Debug)]
pub struct Analysis {
    /// The solved constraint system.
    pub solver: Solver,
    /// The location table.
    pub locs: Locations,
    /// Generation counters.
    pub gen_stats: GenStats,
}

/// Runs the full pipeline with `config`.
pub fn analyze(program: &Program, config: SolverConfig) -> Analysis {
    let mut solver = Solver::new(config);
    let (locs, gen_stats) = generate(program, &mut solver);
    solver.solve();
    Analysis { solver, locs, gen_stats }
}

/// Runs the full pipeline with an oracle partition (the `*-Oracle`
/// experiments); the partition must come from a prior run over the same
/// program (see [`Solver::scc_partition`]).
pub fn analyze_with_oracle(
    program: &Program,
    config: SolverConfig,
    partition: Partition,
) -> Analysis {
    let mut solver = Solver::with_oracle(config, partition);
    let (locs, gen_stats) = generate(program, &mut solver);
    solver.solve();
    Analysis { solver, locs, gen_stats }
}

impl Analysis {
    /// Computes the points-to graph from the least solution.
    pub fn points_to(&mut self) -> PointsToGraph {
        let ls = self.solver.least_solution();
        let mut targets: Vec<Vec<LocId>> = Vec::with_capacity(self.locs.len());
        for (_, loc) in self.locs.iter() {
            let content = self.solver.find(loc.content);
            let mut out: Vec<LocId> =
                ls.get(content).iter().filter_map(|&t| self.locs.loc_of_term(t)).collect();
            out.sort_unstable();
            out.dedup();
            targets.push(out);
        }
        PointsToGraph { targets }
    }
}

/// The points-to graph: for every location, the locations it may point to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointsToGraph {
    targets: Vec<Vec<LocId>>,
}

impl PointsToGraph {
    /// The points-to set of `loc`, sorted.
    pub fn targets(&self, loc: LocId) -> &[LocId] {
        &self.targets[loc.raw() as usize]
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Total number of points-to edges.
    pub fn total_edges(&self) -> usize {
        self.targets.iter().map(Vec::len).sum()
    }

    /// Renders the points-to graph as Graphviz DOT (named locations only).
    pub fn to_dot(&self, locs: &Locations) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph points_to {\n    rankdir=LR;\n");
        for (id, loc) in locs.iter() {
            if !self.targets(id).is_empty() {
                let _ = writeln!(
                    out,
                    "    n{} [label=\"{}\"];",
                    id.raw(),
                    loc.name.replace('"', "'")
                );
            }
        }
        for (id, _) in locs.iter() {
            for &t in self.targets(id) {
                let _ = writeln!(out, "    n{} -> n{};", id.raw(), t.raw());
            }
        }
        out.push_str("}\n");
        out
    }

    /// Mean points-to set size over locations with non-empty sets.
    pub fn mean_nonempty_size(&self) -> f64 {
        let nonempty: Vec<usize> =
            self.targets.iter().map(Vec::len).filter(|&n| n > 0).collect();
        if nonempty.is_empty() {
            0.0
        } else {
            nonempty.iter().sum::<usize>() as f64 / nonempty.len() as f64
        }
    }
}

// ---------------------------------------------------------------------------
// The generator
// ---------------------------------------------------------------------------

struct Gen<'s, B> {
    solver: &'s mut B,
    locs: Locations,
    ref_con: Con,
    lam_cons: FxHashMap<usize, Con>,
    /// Scope stack: innermost last. Each maps identifier → location.
    scopes: Vec<FxHashMap<String, LocId>>,
    /// Return-value variable of the function being generated.
    current_ret: Option<Var>,
    current_fn: String,
    literal: TermId,
    str_count: usize,
    /// Collapsed element location per array location (for initializers).
    elems: FxHashMap<u32, LocId>,
    stats: GenStats,
}

impl<'s, B: ConstraintBuilder> Gen<'s, B> {
    fn new(solver: &'s mut B) -> Self {
        let ref_con = solver.register_con(
            "ref",
            vec![Variance::Covariant, Variance::Covariant, Variance::Contravariant],
        );
        // Literals and NULL: point at nothing, absorb any write.
        let literal = solver.term(ref_con, vec![SetExpr::One, SetExpr::Zero, SetExpr::One]);
        Gen {
            solver,
            locs: Locations::new(),
            ref_con,
            lam_cons: FxHashMap::default(),
            scopes: vec![FxHashMap::default()],
            current_ret: None,
            current_fn: String::new(),
            literal,
            str_count: 0,
            elems: FxHashMap::default(),
            stats: GenStats::default(),
        }
    }

    fn add(&mut self, lhs: impl Into<SetExpr>, rhs: impl Into<SetExpr>) {
        self.stats.constraints += 1;
        self.solver.add(lhs, rhs);
    }

    /// Creates a location: a name constructor, a contents variable, and the
    /// `ref(loc, X, X̄)` term.
    fn new_loc(&mut self, name: String, kind: LocKind) -> LocId {
        let name_con = self.solver.register_nullary(name.clone());
        let loc_term = self.solver.term(name_con, vec![]);
        let content = self.solver.fresh_var();
        let ref_term = self
            .solver
            .term(self.ref_con, vec![loc_term.into(), content.into(), content.into()]);
        self.stats.locations += 1;
        self.locs.push(Location { name, kind, content, ref_term })
    }

    fn lam_con(&mut self, arity: usize) -> Con {
        if let Some(&c) = self.lam_cons.get(&arity) {
            return c;
        }
        // k contravariant parameters, then a covariant return value.
        let mut variances = vec![Variance::Contravariant; arity];
        variances.push(Variance::Covariant);
        let c = self.solver.register_con(format!("lam{arity}"), variances);
        self.lam_cons.insert(arity, c);
        c
    }

    fn bind(&mut self, name: &str, loc: LocId) {
        self.scopes
            .last_mut()
            .expect("scope stack is never empty")
            .insert(name.to_string(), loc);
    }

    fn lookup(&self, name: &str) -> Option<LocId> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    /// Resolves `name`, creating an implicit global for undeclared
    /// identifiers (C programs reference externs all the time).
    fn lookup_or_implicit(&mut self, name: &str) -> LocId {
        if let Some(loc) = self.lookup(name) {
            return loc;
        }
        let loc = self.new_loc(name.to_string(), LocKind::Global);
        self.stats.implicit_globals += 1;
        self.scopes[0].insert(name.to_string(), loc);
        loc
    }

    /// Projects the R-value out of an L-value set: fresh `T` with
    /// `τ ⊆ ref(1, T, 0̄)`.
    fn rvalue(&mut self, lval: SetExpr) -> Var {
        let t = self.solver.fresh_var();
        let sink =
            self.solver.term(self.ref_con, vec![SetExpr::One, t.into(), SetExpr::Zero]);
        self.add(lval, sink);
        t
    }

    /// Writes `value` through an L-value set: `τ ⊆ ref(1, 1, V̄)`.
    fn write(&mut self, lval: SetExpr, value: impl Into<SetExpr>) {
        let sink =
            self.solver.term(self.ref_con, vec![SetExpr::One, SetExpr::One, value.into()]);
        self.add(lval, sink);
    }

    /// Wraps an R-value as a pseudo-L-value (used for `&e`, calls, literals):
    /// `ref(1, v, v̄)`.
    fn holder(&mut self, value: impl Into<SetExpr>) -> SetExpr {
        let value = value.into();
        self.solver.term(self.ref_con, vec![SetExpr::One, value, value]).into()
    }

    // -- program structure -------------------------------------------------

    fn program(&mut self, program: &Program) {
        // Pass 1: declare globals and functions (forward references).
        for g in &program.globals {
            let loc = self.new_loc(g.name.clone(), LocKind::Global);
            self.bind(&g.name.clone(), loc);
            if let Some(elem) = self.array_seed(&g.ty, loc, &g.name.clone()) {
                self.elems.insert(loc.raw(), elem);
            }
        }
        for f in &program.functions {
            self.declare_fn(f);
        }
        // Pass 2: global initializers, then bodies.
        for g in &program.globals {
            if let Some(init) = &g.init {
                let loc = self.lookup(&g.name).expect("declared in pass 1");
                let elem = self.elems.get(&loc.raw()).copied();
                self.init_decl(loc, elem, init);
            }
        }
        for f in &program.functions {
            self.fn_body(f);
        }
    }

    /// Arrays get a collapsed element location seeded into their contents;
    /// returns it so initializer lists can target the elements.
    fn array_seed(&mut self, ty: &Type, loc: LocId, name: &str) -> Option<LocId> {
        if ty.array.is_some() {
            let elem = self.new_loc(format!("{name}[]"), LocKind::ArrayElem);
            let elem_ref = self.locs.get(elem).ref_term;
            let content = self.locs.get(loc).content;
            self.add(elem_ref, content);
            Some(elem)
        } else {
            None
        }
    }

    /// Routes a declaration initializer: plain expressions write into the
    /// declared location; initializer lists flow element-wise into the
    /// array's collapsed element (or the struct location itself).
    fn init_decl(&mut self, loc: LocId, elem: Option<LocId>, init: &Expr) {
        match init {
            Expr::InitList(items) => {
                let target = elem.unwrap_or(loc);
                let content = self.locs.get(target).content;
                self.init_list_into(content, items);
            }
            _ => {
                let lval: SetExpr = self.locs.get(loc).ref_term.into();
                let rhs = self.expr(init);
                let value = self.rvalue(rhs);
                self.write(lval, value);
            }
        }
    }

    fn init_list_into(&mut self, content: Var, items: &[Expr]) {
        for item in items {
            match item {
                Expr::InitList(nested) => self.init_list_into(content, nested),
                _ => {
                    let lval = self.expr(item);
                    let value = self.rvalue(lval);
                    self.add(value, content);
                }
            }
        }
    }

    fn declare_fn(&mut self, f: &Function) {
        if self.locs.fn_info(&f.name).is_some() {
            return; // redefinition: keep the first
        }
        let loc = self.new_loc(f.name.clone(), LocKind::Function);
        self.bind(&f.name.clone(), loc);
        let mut params = Vec::new();
        let mut param_contents: Vec<SetExpr> = Vec::new();
        for (i, p) in f.params.iter().enumerate() {
            let pname = if p.name.is_empty() { format!("arg{i}") } else { p.name.clone() };
            let ploc =
                self.new_loc(format!("{}::{}", f.name, pname), LocKind::Param(f.name.clone()));
            params.push(ploc);
            param_contents.push(self.locs.get(ploc).content.into());
        }
        let ret = self.solver.fresh_var();
        let lam = self.lam_con(f.params.len());
        let mut args = param_contents;
        args.push(ret.into());
        let lam_term = self.solver.term(lam, args);
        // The function's "contents" hold its lam value, so both `f` (decay)
        // and `&f` produce it.
        let content = self.locs.get(loc).content;
        self.add(lam_term, content);
        self.locs.alias_term(lam_term, loc);
        self.locs.set_fn(&f.name, FnInfo { loc, params, ret, lam_term });
    }

    fn fn_body(&mut self, f: &Function) {
        let info = self.locs.fn_info(&f.name).expect("declared in pass 1").clone();
        self.scopes.push(FxHashMap::default());
        for (p, ploc) in f.params.iter().zip(&info.params) {
            let pname = if p.name.is_empty() { continue } else { p.name.clone() };
            self.bind(&pname, *ploc);
        }
        self.current_ret = Some(info.ret);
        self.current_fn = f.name.clone();
        self.stmts(&f.body);
        self.current_ret = None;
        self.scopes.pop();
    }

    // -- statements ---------------------------------------------------------

    fn stmts(&mut self, body: &[Stmt]) {
        self.scopes.push(FxHashMap::default());
        for s in body {
            self.stmt(s);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Decl(d) => {
                let loc = self.new_loc(
                    format!("{}::{}", self.current_fn, d.name),
                    LocKind::Local(self.current_fn.clone()),
                );
                self.bind(&d.name.clone(), loc);
                let qualified = format!("{}::{}", self.current_fn, d.name);
                let elem = self.array_seed(&d.ty, loc, &qualified);
                if let Some(init) = &d.init {
                    self.init_decl(loc, elem, init);
                }
            }
            Stmt::Expr(e) => {
                self.expr(e);
            }
            Stmt::If(c, t, e) => {
                self.expr(c);
                self.stmts(t);
                self.stmts(e);
            }
            Stmt::While(c, b) => {
                self.expr(c);
                self.stmts(b);
            }
            Stmt::For(i, c, s, b) => {
                for part in [i, c, s].into_iter().flatten() {
                    self.expr(part);
                }
                self.stmts(b);
            }
            Stmt::Return(Some(e)) => {
                let lval = self.expr(e);
                let value = self.rvalue(lval);
                if let Some(ret) = self.current_ret {
                    self.add(value, ret);
                }
            }
            Stmt::DoWhile(b, c) => {
                self.stmts(b);
                self.expr(c);
            }
            Stmt::Switch(e, cases) => {
                self.expr(e);
                for case in cases {
                    self.stmts(&case.body);
                }
            }
            Stmt::Break | Stmt::Continue | Stmt::Goto(_) | Stmt::Label(_) => {}
            Stmt::Return(None) => {}
            Stmt::Block(b) => self.stmts(b),
        }
    }

    // -- expressions ----------------------------------------------------------

    /// Generates constraints for `e` and returns its L-value set expression.
    fn expr(&mut self, e: &Expr) -> SetExpr {
        match e {
            Expr::Id(name) => {
                let loc = self.lookup_or_implicit(name);
                self.locs.get(loc).ref_term.into()
            }
            Expr::Int(_) | Expr::Null => self.literal.into(),
            Expr::Sizeof(inner) => {
                self.expr(inner);
                self.literal.into()
            }
            Expr::Str(_) => {
                // A string is an anonymous char array: its pseudo-L-value
                // R-projects to the element location.
                let id = self.str_count;
                self.str_count += 1;
                let loc = self.new_loc(format!("\"str{id}\""), LocKind::StrLit);
                let r = self.locs.get(loc).ref_term;
                self.holder(r)
            }
            Expr::Unary(UnOp::AddrOf, inner) => {
                // &f for a function designator is f itself.
                if let Expr::Id(name) = inner.as_ref() {
                    if self.locs.fn_info(name).is_some() {
                        return self.expr(inner);
                    }
                }
                let tau = self.expr(inner);
                self.holder(tau)
            }
            Expr::Unary(UnOp::Deref, inner) => {
                let tau = self.expr(inner);
                self.rvalue(tau).into()
            }
            Expr::Unary(UnOp::Neg | UnOp::Not | UnOp::BitNot, inner) => {
                self.expr(inner);
                self.literal.into()
            }
            Expr::Binary(op, a, b) => {
                let ta = self.expr(a);
                let tb = self.expr(b);
                match op {
                    // Pointer arithmetic preserves targets. `ptr ± int` (by
                    // far the common case) keeps the pointer side's set
                    // directly — no merge variable, hence no spurious
                    // constraint cycle for `p = p + 1`.
                    BinOp::Add | BinOp::Sub => {
                        let scalar = |e: &Expr| {
                            matches!(e, Expr::Int(_) | Expr::Null | Expr::Sizeof(_))
                        };
                        match (scalar(a), scalar(b)) {
                            (true, true) => self.literal.into(),
                            (false, true) => {
                                let va = self.rvalue(ta);
                                self.holder(va)
                            }
                            (true, false) => {
                                let vb = self.rvalue(tb);
                                self.holder(vb)
                            }
                            (false, false) => {
                                let t = self.solver.fresh_var();
                                let va = self.rvalue(ta);
                                let vb = self.rvalue(tb);
                                self.add(va, t);
                                self.add(vb, t);
                                self.holder(t)
                            }
                        }
                    }
                    _ => self.literal.into(),
                }
            }
            Expr::Assign(l, r) => {
                let tl = self.expr(l);
                let tr = self.expr(r);
                let value = self.rvalue(tr);
                self.write(tl, value);
                // The value of an assignment is its right-hand side.
                self.holder(value)
            }
            Expr::Call(callee, args) => {
                let tc = self.expr(callee);
                let fval = self.rvalue(tc);
                self.locs.push_call_site(CallSite {
                    caller: self.current_fn.clone(),
                    callee_values: fval,
                    arity: args.len(),
                });
                let mut sink_args: Vec<SetExpr> = Vec::with_capacity(args.len() + 1);
                for a in args {
                    let ta = self.expr(a);
                    sink_args.push(self.rvalue(ta).into());
                }
                let ret = self.solver.fresh_var();
                sink_args.push(ret.into());
                let lam = self.lam_con(args.len());
                let sink = self.solver.term(lam, sink_args);
                self.add(fval, sink);
                self.holder(ret)
            }
            Expr::Index(base, idx) => {
                self.expr(idx);
                let tb = self.expr(base);
                self.rvalue(tb).into()
            }
            Expr::Member(base, _field, arrow) => {
                let tb = self.expr(base);
                if *arrow {
                    self.rvalue(tb).into()
                } else {
                    tb
                }
            }
            Expr::Cast(_, inner) => self.expr(inner),
            Expr::Ternary(c, t, f) => {
                // Both branches' values merge into the result.
                self.expr(c);
                let tt = self.expr(t);
                let tf = self.expr(f);
                let merged = self.solver.fresh_var();
                let vt = self.rvalue(tt);
                let vf = self.rvalue(tf);
                self.add(vt, merged);
                self.add(vf, merged);
                self.holder(merged)
            }
            Expr::Comma(a, b) => {
                self.expr(a);
                self.expr(b)
            }
            Expr::InitList(items) => {
                // Outside a declaration (compound-literal-ish): merge all
                // element values.
                let merged = self.solver.fresh_var();
                for item in items {
                    let lval = self.expr(item);
                    let value = self.rvalue(lval);
                    self.add(value, merged);
                }
                self.holder(merged)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bane_cfront::parse::parse;
    use std::collections::BTreeSet;

    /// Runs the analysis and returns `name → {target names}` for every
    /// location with a non-empty points-to set.
    fn pts(src: &str, config: SolverConfig) -> std::collections::BTreeMap<String, BTreeSet<String>> {
        let program = parse(src).expect("test program parses");
        let mut analysis = analyze(&program, config);
        assert!(
            analysis.solver.inconsistencies().is_empty(),
            "unexpected inconsistencies: {:?}",
            analysis.solver.inconsistencies()
        );
        let graph = analysis.points_to();
        let mut out = std::collections::BTreeMap::new();
        for (id, loc) in analysis.locs.iter() {
            let targets: BTreeSet<String> = graph
                .targets(id)
                .iter()
                .map(|&t| analysis.locs.get(t).name.clone())
                .collect();
            if !targets.is_empty() {
                out.insert(loc.name.clone(), targets);
            }
        }
        out
    }

    fn set(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// The paper's Figure 5 example program:
    /// `a = &b; b = &c; a = &c;` — wait, the figure shows a→{b,c}, b→{d}, c→{d}… we
    /// use the canonical variant: a points to b and c; b and c point to d.
    #[test]
    fn figure5_style_graph() {
        let m = pts(
            "int d;\n\
             int *b, *c;\n\
             int **a;\n\
             void main(void) { a = &b; a = &c; b = &d; c = &d; }",
            SolverConfig::if_online(),
        );
        assert_eq!(m["a"], set(&["b", "c"]));
        assert_eq!(m["b"], set(&["d"]));
        assert_eq!(m["c"], set(&["d"]));
    }

    /// All six experiment configurations compute the same points-to graph.
    #[test]
    fn configs_agree_on_points_to() {
        let src = "int x, y;\n\
             int *p, *q, **pp;\n\
             void swap(void) { pp = &p; *pp = &x; q = *pp; q = &y; p = q; }";
        let reference = pts(src, SolverConfig::sf_plain());
        for config in [
            SolverConfig::if_plain(),
            SolverConfig::sf_online(),
            SolverConfig::if_online(),
        ] {
            assert_eq!(pts(src, config), reference, "{config:?}");
        }
    }

    #[test]
    fn assignment_through_deref() {
        let m = pts(
            "int x;\nint *p;\nint **q;\n\
             void f(void) { q = &p; *q = &x; }",
            SolverConfig::if_online(),
        );
        assert_eq!(m["q"], set(&["p"]));
        assert_eq!(m["p"], set(&["x"]));
    }

    #[test]
    fn calls_bind_params_and_returns() {
        let m = pts(
            "int g;\n\
             int *identity(int *p) { return p; }\n\
             int *r;\n\
             void main(void) { r = identity(&g); }",
            SolverConfig::if_online(),
        );
        assert_eq!(m["identity::p"], set(&["g"]));
        assert_eq!(m["r"], set(&["g"]));
    }

    #[test]
    fn function_pointers_flow() {
        let m = pts(
            "int g;\n\
             int *get(void) { return &g; }\n\
             int *(*fp)(void);\n\
             int *r;\n\
             void main(void) { fp = &get; r = fp(); }",
            SolverConfig::if_online(),
        );
        assert_eq!(m["fp"], set(&["get"]));
        assert_eq!(m["r"], set(&["g"]));
    }

    #[test]
    fn function_decay_without_ampersand() {
        let m = pts(
            "int g;\n\
             int *get(void) { return &g; }\n\
             int *(*fp)(void);\n\
             void main(void) { fp = get; g = *fp(); }",
            SolverConfig::if_online(),
        );
        assert_eq!(m["fp"], set(&["get"]));
    }

    #[test]
    fn arrays_collapse_to_element() {
        let m = pts(
            "int x;\n\
             int *arr[4];\n\
             int **p;\n\
             void f(void) { arr[0] = &x; p = arr; p = &arr[1]; }",
            SolverConfig::if_online(),
        );
        assert_eq!(m["arr"], set(&["arr[]"]));
        assert_eq!(m["arr[]"], set(&["x"]));
        assert_eq!(m["p"], set(&["arr[]"]));
    }

    #[test]
    fn struct_members_are_field_insensitive() {
        let m = pts(
            "struct node { struct node *next; int v; };\n\
             struct node a, b;\n\
             struct node *h;\n\
             void f(void) { h = &a; h->next = &b; a.next = h; }",
            SolverConfig::if_online(),
        );
        // h → {a}; a.next collapses onto a: a → {b, a}.
        assert_eq!(m["h"], set(&["a"]));
        assert_eq!(m["a"], set(&["a", "b"]));
    }

    #[test]
    fn string_literals_and_null() {
        let m = pts(
            "char *s;\nvoid f(void) { s = \"hello\"; s = NULL; }",
            SolverConfig::if_online(),
        );
        assert_eq!(m["s"], set(&["\"str0\""]));
    }

    #[test]
    fn pointer_arithmetic_preserves_targets() {
        let m = pts(
            "int x;\nint *p, *q;\nvoid f(void) { p = &x; q = p + 1; }",
            SolverConfig::if_online(),
        );
        assert_eq!(m["q"], set(&["x"]));
    }

    #[test]
    fn cycles_from_copy_loops_collapse() {
        let src = "int x;\n\
             int *a, *b, *c;\n\
             void f(void) { a = &x; b = a; c = b; a = c; }";
        let program = parse(src).unwrap();
        let mut analysis = analyze(&program, SolverConfig::if_online());
        assert!(analysis.solver.stats().vars_eliminated > 0, "copy cycle should collapse");
        let graph = analysis.points_to();
        for name in ["a", "b", "c"] {
            let id = analysis.locs.by_name(name).unwrap();
            assert_eq!(graph.targets(id).len(), 1, "{name}");
        }
    }

    #[test]
    fn oracle_replay_matches() {
        let src = "int x, y;\n\
             int *p, *q;\n\
             void f(void) { p = &x; q = p; p = q; q = &y; }";
        let program = parse(src).unwrap();
        let mut first = analyze(&program, SolverConfig::if_online());
        let reference = first.points_to();
        let partition = first.solver.scc_partition();
        for base in [SolverConfig::sf_plain(), SolverConfig::if_plain()] {
            let mut oracle = analyze_with_oracle(&program, base, partition.clone());
            assert_eq!(oracle.solver.stats().cycles_collapsed, 0);
            let got = oracle.points_to();
            // Compare by name since LocIds are identical across runs.
            assert_eq!(got, reference, "{base:?}");
        }
    }

    #[test]
    fn dot_export_renders_edges() {
        let program = parse("int x;\nint *p;\nvoid f(void) { p = &x; }").unwrap();
        let mut analysis = analyze(&program, SolverConfig::if_online());
        let graph = analysis.points_to();
        let dot = graph.to_dot(&analysis.locs);
        assert!(dot.starts_with("digraph points_to {"));
        assert!(dot.contains("\"p\""), "{dot}");
        assert!(dot.contains(" -> "), "{dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn implicit_globals_are_created() {
        let program = parse("void f(void) { undeclared = 3; }").unwrap();
        let mut solver = Solver::new(SolverConfig::if_online());
        let (_locs, stats) = generate(&program, &mut solver);
        assert_eq!(stats.implicit_globals, 1);
    }

    #[test]
    fn set_variable_counts_are_deterministic() {
        let src = "int *p, x; void f(void) { p = &x; }";
        let program = parse(src).unwrap();
        let mut s1 = Solver::new(SolverConfig::if_online());
        let mut s2 = Solver::new(SolverConfig::if_online());
        generate(&program, &mut s1);
        generate(&program, &mut s2);
        assert_eq!(s1.vars_created(), s2.vars_created());
    }
}
