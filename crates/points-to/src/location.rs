//! Abstract memory locations.
//!
//! Andersen's analysis abstracts memory as a finite set of *locations*: one
//! per declared variable (globals, parameters, locals), one per function, one
//! per string literal, and one for the elements of each array (arrays are
//! collapsed onto a single weak element location, as in Andersen's thesis).
//!
//! Each location `l` pairs a *name* with a set variable `X_l` for its
//! contents, realized in the solver as the source term
//! `ref(loc_l, X_l, X̄_l)` of Section 3.1 — covariant `get`, contravariant
//! `set`. Functions additionally carry a `lam` term
//! `lam_k(P̄₁, …, P̄ₖ, R)` describing their parameters (contravariant) and
//! return value (covariant).

use bane_core::prelude::*;
use bane_util::newtype_index;
use bane_util::FxHashMap;

newtype_index! {
    /// Identifies an abstract memory location.
    pub struct LocId("l");
}

/// What a location stands for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LocKind {
    /// A global variable.
    Global,
    /// A local variable of the named function.
    Local(String),
    /// A parameter of the named function.
    Param(String),
    /// A function (the code object itself).
    Function,
    /// The collapsed element location of an array variable.
    ArrayElem,
    /// An anonymous string literal.
    StrLit,
}

/// One abstract location and its solver artifacts.
#[derive(Clone, Debug)]
pub struct Location {
    /// Display name (source identifier, possibly disambiguated).
    pub name: String,
    /// What the location stands for.
    pub kind: LocKind,
    /// The contents variable `X_l`.
    pub content: Var,
    /// The interned `ref(loc_l, X_l, X̄_l)` source/sink term.
    pub ref_term: TermId,
}

/// Extra per-function information.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// The function's own location.
    pub loc: LocId,
    /// Parameter locations, in order.
    pub params: Vec<LocId>,
    /// The set variable accumulating returned values.
    pub ret: Var,
    /// The interned `lam_k(…)` term.
    pub lam_term: TermId,
}

/// One call site recorded during constraint generation: the enclosing
/// function and the set variable holding the callee's possible values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Name of the function containing the call (empty for global
    /// initializers).
    pub caller: String,
    /// The set variable the callee expression's R-value flows into; after
    /// solving, its least solution contains the `lam` terms of the possible
    /// callees.
    pub callee_values: Var,
    /// Number of arguments at the site.
    pub arity: usize,
}

/// The location table produced by constraint generation.
#[derive(Clone, Debug, Default)]
pub struct Locations {
    locs: Vec<Location>,
    fns: FxHashMap<String, FnInfo>,
    by_value_term: FxHashMap<TermId, LocId>,
    call_sites: Vec<CallSite>,
}

impl Locations {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a location; `value_term` is the term whose membership in a
    /// points-to set means "points to this location" (`ref` for data
    /// locations, `lam` for function values — both map back here).
    pub fn push(&mut self, loc: Location) -> LocId {
        let id = LocId::new(self.locs.len());
        self.by_value_term.insert(loc.ref_term, id);
        self.locs.push(loc);
        id
    }

    /// Associates an additional value term (e.g. a function's `lam`) with a
    /// location.
    pub fn alias_term(&mut self, term: TermId, loc: LocId) {
        self.by_value_term.insert(term, loc);
    }

    /// Registers per-function info.
    pub fn set_fn(&mut self, name: impl Into<String>, info: FnInfo) {
        self.fns.insert(name.into(), info);
    }

    /// Looks up a function by name.
    pub fn fn_info(&self, name: &str) -> Option<&FnInfo> {
        self.fns.get(name)
    }

    /// All function names.
    pub fn fn_names(&self) -> impl Iterator<Item = &str> {
        self.fns.keys().map(String::as_str)
    }

    /// The location a points-to set member term denotes, if any.
    pub fn loc_of_term(&self, term: TermId) -> Option<LocId> {
        self.by_value_term.get(&term).copied()
    }

    /// The location record for `id`.
    pub fn get(&self, id: LocId) -> &Location {
        &self.locs[id.raw() as usize]
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    /// Iterates over `(id, location)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LocId, &Location)> {
        self.locs.iter().enumerate().map(|(i, l)| (LocId::new(i), l))
    }

    /// Finds the first location with the given display name.
    pub fn by_name(&self, name: &str) -> Option<LocId> {
        self.locs.iter().position(|l| l.name == name).map(LocId::new)
    }

    /// Records a call site (used by constraint generation).
    pub fn push_call_site(&mut self, site: CallSite) {
        self.call_sites.push(site);
    }

    /// All recorded call sites, in generation order.
    pub fn call_sites(&self) -> &[CallSite] {
        &self.call_sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(name: &str, kind: LocKind) -> Location {
        Location {
            name: name.into(),
            kind,
            content: Var::new(0),
            ref_term: TermId::new(0),
        }
    }

    #[test]
    fn push_and_lookup() {
        let mut locs = Locations::new();
        let a = locs.push(Location { ref_term: TermId::new(10), ..dummy("a", LocKind::Global) });
        let b = locs.push(Location { ref_term: TermId::new(11), ..dummy("b", LocKind::Global) });
        assert_ne!(a, b);
        assert_eq!(locs.len(), 2);
        assert_eq!(locs.loc_of_term(TermId::new(10)), Some(a));
        assert_eq!(locs.loc_of_term(TermId::new(12)), None);
        assert_eq!(locs.by_name("b"), Some(b));
        assert_eq!(locs.get(a).name, "a");
    }

    #[test]
    fn fn_info_and_term_alias() {
        let mut locs = Locations::new();
        let f = locs.push(Location { ref_term: TermId::new(5), ..dummy("f", LocKind::Function) });
        locs.alias_term(TermId::new(6), f);
        locs.set_fn(
            "f",
            FnInfo { loc: f, params: vec![], ret: Var::new(3), lam_term: TermId::new(6) },
        );
        assert_eq!(locs.loc_of_term(TermId::new(6)), Some(f));
        assert_eq!(locs.fn_info("f").unwrap().loc, f);
        assert_eq!(locs.fn_names().count(), 1);
    }
}
