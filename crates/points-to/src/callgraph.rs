//! Call-graph extraction from the solved points-to analysis.
//!
//! Every call site's callee-value variable is recorded during constraint
//! generation ([`CallSite`](crate::location::CallSite)); after solving, its
//! least solution contains the `lam` terms of the functions the site may
//! invoke. This module assembles those into a per-function call graph —
//! exactly how clients of Andersen's analysis (devirtualization, inliners,
//! reachability) consume it.

use crate::andersen::Analysis;
use crate::location::{LocId, LocKind};
use bane_util::{FxHashMap, FxHashSet};
use std::collections::BTreeSet;

/// The call graph derived from a solved analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallGraph {
    /// Caller function name → callee function location ids (sorted).
    edges: FxHashMap<String, BTreeSet<LocId>>,
    /// Call sites whose callee set was empty (dead or through a null/opaque
    /// pointer).
    pub unresolved_sites: usize,
    /// Total call sites examined.
    pub total_sites: usize,
}

impl CallGraph {
    /// Builds the call graph from a solved [`Analysis`].
    pub fn from_analysis(analysis: &mut Analysis) -> CallGraph {
        let ls = analysis.solver.least_solution();
        let mut edges: FxHashMap<String, BTreeSet<LocId>> = FxHashMap::default();
        let mut unresolved = 0;
        let sites = analysis.locs.call_sites().to_vec();
        for site in &sites {
            let v = analysis.solver.find(site.callee_values);
            let callees: BTreeSet<LocId> = ls
                .get(v)
                .iter()
                .filter_map(|&t| analysis.locs.loc_of_term(t))
                .filter(|&l| analysis.locs.get(l).kind == LocKind::Function)
                .collect();
            if callees.is_empty() {
                unresolved += 1;
            }
            edges.entry(site.caller.clone()).or_default().extend(callees);
        }
        CallGraph { edges, unresolved_sites: unresolved, total_sites: sites.len() }
    }

    /// The functions `caller` may invoke (empty if unknown caller).
    pub fn callees(&self, caller: &str) -> impl Iterator<Item = LocId> + '_ {
        self.edges.get(caller).into_iter().flatten().copied()
    }

    /// Caller names with at least one resolved callee.
    pub fn callers(&self) -> impl Iterator<Item = &str> {
        self.edges.keys().map(String::as_str)
    }

    /// Total caller→callee edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// Functions transitively reachable from `roots` (by location id).
    pub fn reachable_from<'a>(
        &self,
        analysis: &Analysis,
        roots: impl IntoIterator<Item = &'a str>,
    ) -> BTreeSet<LocId> {
        let mut seen: BTreeSet<LocId> = BTreeSet::new();
        let mut work: Vec<String> = Vec::new();
        let mut queued: FxHashSet<String> = FxHashSet::default();
        for root in roots {
            if let Some(info) = analysis.locs.fn_info(root) {
                if seen.insert(info.loc) && queued.insert(root.to_string()) {
                    work.push(root.to_string());
                }
            }
        }
        while let Some(caller) = work.pop() {
            for callee in self.callees(&caller) {
                if seen.insert(callee) {
                    let name = analysis.locs.get(callee).name.clone();
                    if queued.insert(name.clone()) {
                        work.push(name);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::andersen;
    use bane_cfront::parse::parse;
    use bane_core::prelude::SolverConfig;

    fn graph(src: &str) -> (Analysis, CallGraph) {
        let program = parse(src).unwrap();
        let mut analysis = andersen::analyze(&program, SolverConfig::if_online());
        let cg = CallGraph::from_analysis(&mut analysis);
        (analysis, cg)
    }

    fn callee_names(analysis: &Analysis, cg: &CallGraph, caller: &str) -> Vec<String> {
        cg.callees(caller).map(|l| analysis.locs.get(l).name.clone()).collect()
    }

    #[test]
    fn direct_calls_resolve() {
        let (analysis, cg) = graph(
            "void helper(void) { }\n\
             void main(void) { helper(); }",
        );
        assert_eq!(callee_names(&analysis, &cg, "main"), vec!["helper"]);
        assert_eq!(cg.total_sites, 1);
        assert_eq!(cg.unresolved_sites, 0);
    }

    #[test]
    fn function_pointer_calls_resolve_to_all_assigned() {
        let (analysis, cg) = graph(
            "void a(void) { }\n\
             void b(void) { }\n\
             void (*fp)(void);\n\
             void main(int k) { fp = a; if (k) fp = b; fp(); }",
        );
        assert_eq!(callee_names(&analysis, &cg, "main"), vec!["a", "b"]);
    }

    #[test]
    fn unresolved_sites_are_counted() {
        let (_analysis, cg) = graph(
            "void (*fp)(void);\n\
             void main(void) { fp(); }",
        );
        assert_eq!(cg.total_sites, 1);
        assert_eq!(cg.unresolved_sites, 1);
    }

    #[test]
    fn reachability_walks_transitively() {
        let (analysis, cg) = graph(
            "void leaf(void) { }\n\
             void mid(void) { leaf(); }\n\
             void dead(void) { }\n\
             void main(void) { mid(); }",
        );
        let reached = cg.reachable_from(&analysis, ["main"]);
        let mut names: Vec<String> =
            reached.iter().map(|&l| analysis.locs.get(l).name.clone()).collect();
        names.sort();
        assert_eq!(names, vec!["leaf", "main", "mid"]);
        assert_eq!(cg.edge_count(), 2);
        assert!(cg.callers().count() >= 2);
    }

    #[test]
    fn recursive_functions_terminate() {
        let (analysis, cg) = graph("void f(void) { f(); }\nvoid main(void) { f(); }");
        let reached = cg.reachable_from(&analysis, ["main"]);
        assert_eq!(reached.len(), 2);
    }
}
