//! Points-to analyses over the C-subset AST.
//!
//! - [`andersen`]: Andersen's inclusion-based analysis expressed as set
//!   constraints (Section 3 of the paper) — the workload driving every table
//!   and figure of the evaluation.
//! - [`steensgaard`]: Steensgaard's unification-based analysis, the faster
//!   but less precise baseline the related work compares against.
//! - [`location`]: the abstract-location table shared by both.
//!
//! # Examples
//!
//! ```
//! use bane_cfront::parse::parse;
//! use bane_core::prelude::SolverConfig;
//! use bane_points_to::andersen;
//!
//! let program = parse("int x; int *p; void f(void) { p = &x; }")?;
//! let mut analysis = andersen::analyze(&program, SolverConfig::if_online());
//! let graph = analysis.points_to();
//! let p = analysis.locs.by_name("p").unwrap();
//! let x = analysis.locs.by_name("x").unwrap();
//! assert_eq!(graph.targets(p), &[x]);
//! # Ok::<(), bane_cfront::parse::ParseError>(())
//! ```

pub mod andersen;
pub mod callgraph;
pub mod location;
pub mod steensgaard;

pub use andersen::{analyze, analyze_with_oracle, generate, Analysis, PointsToGraph};
pub use callgraph::CallGraph;
pub use location::{CallSite, LocId, LocKind, Location, Locations};
pub use steensgaard::SteensgaardResult;
