//! The named monotonic counter registry.
//!
//! One [`Counter`] per figure the workspace measures, with a stable dotted
//! name (`work.total`, `search.edges-scanned`, …) used in reports and JSON.
//! The registry unifies what used to be scattered across `Stats` in
//! `bane-core`, the chain-search `SearchStats`, the graph census, and the
//! constraint generators — one namespace, documented in
//! `docs/OBSERVABILITY.md`.
//!
//! [`Counters`] is a fixed array indexed by the enum discriminant: no
//! hashing, no allocation, `O(1)` add. Additions **saturate** at `u64::MAX`
//! instead of wrapping, so a runaway probe can never flip a large figure
//! into a small one.

/// A named monotonic counter. See the [module docs](self) for the registry
/// design and `docs/OBSERVABILITY.md` for what each figure means.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the name() table below is the documentation of record
pub enum Counter {
    // -- constraint intake ---------------------------------------------
    /// Constraints added to the system (`Stats::constraints_added`).
    ConstraintsAdded = 0,
    /// Constraints dequeued and processed (`Stats::constraints_processed`).
    ConstraintsProcessed = 1,
    /// Constraints between two constructed terms (`Stats::term_constraints`).
    ConstraintsTerm = 2,
    /// Trivial `X ⊆ X` constraints skipped (`Stats::self_constraints`).
    ConstraintsSelf = 3,

    // -- closure work (paper §6 "Work") --------------------------------
    /// Paper's Work metric: edge-insertion attempts (`Stats::work`).
    WorkTotal = 4,
    /// Insertions that found the edge already present (`Stats::redundant`).
    WorkRedundant = 5,
    /// Transitive resolutions of matched source/sink pairs
    /// (`Stats::resolutions`).
    WorkResolutions = 6,

    // -- partial online chain searches (paper §2.5 / §3) ---------------
    /// Chain searches attempted (`SearchStats::searches`).
    SearchCount = 7,
    /// Nodes visited across all searches (`SearchStats::nodes_visited`).
    SearchNodesVisited = 8,
    /// Edges scanned across all searches (`SearchStats::edges_scanned`).
    SearchEdgesScanned = 9,
    /// Largest node-visit count of any single search.
    SearchMaxVisits = 10,

    // -- cycle elimination ----------------------------------------------
    /// Cycles found by chain searches (`SearchStats::cycles_found`).
    CycleFound = 11,
    /// Cycles collapsed, online or offline (`Stats::cycles_collapsed`).
    CycleCollapsed = 12,
    /// Variables forwarded into a witness (`Stats::vars_eliminated`).
    CycleVarsEliminated = 13,
    /// Fresh variables aliased to an oracle witness at creation
    /// (`Stats::oracle_aliased`).
    OracleAliased = 14,

    // -- hybrid adjacency storage (DESIGN.md §4b) -----------------------
    /// Adjacency lists promoted past the degree-16 small-mode threshold.
    AdjPromotions = 15,

    // -- graph census -----------------------------------------------------
    /// Distinct live edges at convergence.
    CensusEdges = 16,
    /// Peak distinct edges over the run.
    CensusPeakEdges = 17,
    /// Live (non-forwarded) variables at convergence.
    CensusLiveVars = 18,

    // -- least solution (paper §2.4) ------------------------------------
    /// Variables whose least solution is non-empty.
    LsSetVars = 19,
    /// Total (var, source) entries in the least solution.
    LsEntries = 20,

    // -- constraint generation -------------------------------------------
    /// Constraints emitted by a front-end generator.
    GenConstraints = 21,
    /// Abstract locations created by the points-to generator.
    GenLocations = 22,

    // -- errors -----------------------------------------------------------
    /// Inconsistent constraints detected (`Stats::inconsistencies`).
    ErrorsInconsistencies = 23,
}

impl Counter {
    /// Number of registered counters.
    pub const COUNT: usize = 24;

    /// Every counter, in canonical report order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::ConstraintsAdded,
        Counter::ConstraintsProcessed,
        Counter::ConstraintsTerm,
        Counter::ConstraintsSelf,
        Counter::WorkTotal,
        Counter::WorkRedundant,
        Counter::WorkResolutions,
        Counter::SearchCount,
        Counter::SearchNodesVisited,
        Counter::SearchEdgesScanned,
        Counter::SearchMaxVisits,
        Counter::CycleFound,
        Counter::CycleCollapsed,
        Counter::CycleVarsEliminated,
        Counter::OracleAliased,
        Counter::AdjPromotions,
        Counter::CensusEdges,
        Counter::CensusPeakEdges,
        Counter::CensusLiveVars,
        Counter::LsSetVars,
        Counter::LsEntries,
        Counter::GenConstraints,
        Counter::GenLocations,
        Counter::ErrorsInconsistencies,
    ];

    /// The stable dotted name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::ConstraintsAdded => "constraints.added",
            Counter::ConstraintsProcessed => "constraints.processed",
            Counter::ConstraintsTerm => "constraints.term",
            Counter::ConstraintsSelf => "constraints.self",
            Counter::WorkTotal => "work.total",
            Counter::WorkRedundant => "work.redundant",
            Counter::WorkResolutions => "work.resolutions",
            Counter::SearchCount => "search.count",
            Counter::SearchNodesVisited => "search.nodes-visited",
            Counter::SearchEdgesScanned => "search.edges-scanned",
            Counter::SearchMaxVisits => "search.max-visits",
            Counter::CycleFound => "cycle.found",
            Counter::CycleCollapsed => "cycle.collapsed",
            Counter::CycleVarsEliminated => "cycle.vars-eliminated",
            Counter::OracleAliased => "oracle.aliased",
            Counter::AdjPromotions => "adj.promotions",
            Counter::CensusEdges => "census.edges",
            Counter::CensusPeakEdges => "census.peak-edges",
            Counter::CensusLiveVars => "census.live-vars",
            Counter::LsSetVars => "ls.set-vars",
            Counter::LsEntries => "ls.entries",
            Counter::GenConstraints => "gen.constraints",
            Counter::GenLocations => "gen.locations",
            Counter::ErrorsInconsistencies => "errors.inconsistencies",
        }
    }

    /// The counter with the given stable name, if any.
    pub fn by_name(name: &str) -> Option<Counter> {
        Counter::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Fixed-size counter store, indexed by [`Counter`]. See the
/// [module docs](self).
#[derive(Clone, Debug)]
pub struct Counters {
    values: [u64; Counter::COUNT],
}

impl Default for Counters {
    fn default() -> Self {
        Counters { values: [0; Counter::COUNT] }
    }
}

impl Counters {
    /// A fresh, all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to `counter`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&mut self, counter: Counter, n: u64) {
        let v = &mut self.values[counter as usize];
        *v = v.saturating_add(n);
    }

    /// Overwrites `counter` with `value` (for gauge-style figures like the
    /// census, where the source of truth is elsewhere).
    #[inline]
    pub fn set(&mut self, counter: Counter, value: u64) {
        self.values[counter as usize] = value;
    }

    /// Raises `counter` to `value` if `value` is larger (for maxima like
    /// `search.max-visits`).
    #[inline]
    pub fn max(&mut self, counter: Counter, value: u64) {
        let v = &mut self.values[counter as usize];
        *v = (*v).max(value);
    }

    /// Reads `counter`.
    #[inline]
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter as usize]
    }

    /// Every counter with a non-zero value, as `(name, value)` pairs in
    /// [`Counter::ALL`] order — the report form.
    pub fn nonzero(&self) -> Vec<(String, u64)> {
        Counter::ALL
            .into_iter()
            .filter(|c| self.values[*c as usize] != 0)
            .map(|c| (c.name().to_string(), self.values[c as usize]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in Counter::ALL {
            assert!(seen.insert(c.name()), "duplicate name {}", c.name());
            assert_eq!(Counter::by_name(c.name()), Some(c));
        }
        assert_eq!(seen.len(), Counter::COUNT);
        assert_eq!(Counter::by_name("work.nope"), None);
    }

    #[test]
    fn add_saturates_instead_of_wrapping() {
        let mut c = Counters::new();
        c.add(Counter::WorkTotal, u64::MAX - 5);
        c.add(Counter::WorkTotal, 3);
        assert_eq!(c.get(Counter::WorkTotal), u64::MAX - 2);
        c.add(Counter::WorkTotal, 10);
        assert_eq!(c.get(Counter::WorkTotal), u64::MAX, "saturated, not wrapped");
        c.add(Counter::WorkTotal, 1);
        assert_eq!(c.get(Counter::WorkTotal), u64::MAX);
    }

    #[test]
    fn set_and_max_semantics() {
        let mut c = Counters::new();
        c.set(Counter::CensusEdges, 100);
        c.set(Counter::CensusEdges, 40);
        assert_eq!(c.get(Counter::CensusEdges), 40, "set overwrites");
        c.max(Counter::SearchMaxVisits, 7);
        c.max(Counter::SearchMaxVisits, 3);
        assert_eq!(c.get(Counter::SearchMaxVisits), 7, "max keeps the peak");
    }

    #[test]
    fn nonzero_reports_in_canonical_order() {
        let mut c = Counters::new();
        c.add(Counter::LsEntries, 2);
        c.add(Counter::WorkTotal, 9);
        let rows = c.nonzero();
        assert_eq!(
            rows,
            vec![("work.total".to_string(), 9), ("ls.entries".to_string(), 2)]
        );
    }
}
