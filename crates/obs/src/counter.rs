//! The named monotonic counter registry.
//!
//! One [`Counter`] per figure the workspace measures, with a stable dotted
//! name (`work.total`, `search.edges-scanned`, …) used in reports and JSON.
//! The registry unifies what used to be scattered across `Stats` in
//! `bane-core`, the chain-search `SearchStats`, the graph census, and the
//! constraint generators — one namespace, documented in
//! `docs/OBSERVABILITY.md`.
//!
//! [`Counters`] is a fixed array of atomics indexed by the enum
//! discriminant: no hashing, no allocation, `O(1)` add — and, since the
//! parallel engine landed, **`Sync`**: probes can fire from worker threads
//! without a lock (`bane-par` shares one `&Counters` across its shard
//! scanners). All operations use relaxed atomics — counters are statistics,
//! not synchronization — and additions **saturate** at `u64::MAX` instead of
//! wrapping, so a runaway probe can never flip a large figure into a small
//! one. The single-threaded fast path is one uncontended compare-exchange,
//! still allocation-free.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotonic counter. See the [module docs](self) for the registry
/// design and `docs/OBSERVABILITY.md` for what each figure means.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the name() table below is the documentation of record
pub enum Counter {
    // -- constraint intake ---------------------------------------------
    /// Constraints added to the system (`Stats::constraints_added`).
    ConstraintsAdded = 0,
    /// Constraints dequeued and processed (`Stats::constraints_processed`).
    ConstraintsProcessed = 1,
    /// Constraints between two constructed terms (`Stats::term_constraints`).
    ConstraintsTerm = 2,
    /// Trivial `X ⊆ X` constraints skipped (`Stats::self_constraints`).
    ConstraintsSelf = 3,

    // -- closure work (paper §6 "Work") --------------------------------
    /// Paper's Work metric: edge-insertion attempts (`Stats::work`).
    WorkTotal = 4,
    /// Insertions that found the edge already present (`Stats::redundant`).
    WorkRedundant = 5,
    /// Transitive resolutions of matched source/sink pairs
    /// (`Stats::resolutions`).
    WorkResolutions = 6,

    // -- partial online chain searches (paper §2.5 / §3) ---------------
    /// Chain searches attempted (`SearchStats::searches`).
    SearchCount = 7,
    /// Nodes visited across all searches (`SearchStats::nodes_visited`).
    SearchNodesVisited = 8,
    /// Edges scanned across all searches (`SearchStats::edges_scanned`).
    SearchEdgesScanned = 9,
    /// Largest node-visit count of any single search.
    SearchMaxVisits = 10,

    // -- cycle elimination ----------------------------------------------
    /// Cycles found by chain searches (`SearchStats::cycles_found`).
    CycleFound = 11,
    /// Cycles collapsed, online or offline (`Stats::cycles_collapsed`).
    CycleCollapsed = 12,
    /// Variables forwarded into a witness (`Stats::vars_eliminated`).
    CycleVarsEliminated = 13,
    /// Fresh variables aliased to an oracle witness at creation
    /// (`Stats::oracle_aliased`).
    OracleAliased = 14,

    // -- hybrid adjacency storage (DESIGN.md §4b) -----------------------
    /// Adjacency lists promoted past the degree-16 small-mode threshold.
    AdjPromotions = 15,

    // -- graph census -----------------------------------------------------
    /// Distinct live edges at convergence.
    CensusEdges = 16,
    /// Peak distinct edges over the run.
    CensusPeakEdges = 17,
    /// Live (non-forwarded) variables at convergence.
    CensusLiveVars = 18,

    // -- least solution (paper §2.4) ------------------------------------
    /// Variables whose least solution is non-empty.
    LsSetVars = 19,
    /// Total (var, source) entries in the least solution.
    LsEntries = 20,

    // -- constraint generation -------------------------------------------
    /// Constraints emitted by a front-end generator.
    GenConstraints = 21,
    /// Abstract locations created by the points-to generator.
    GenLocations = 22,

    // -- errors -----------------------------------------------------------
    /// Inconsistent constraints detected (`Stats::inconsistencies`).
    ErrorsInconsistencies = 23,

    // -- parallel engine (bane-par, docs/PARALLELISM.md) ------------------
    /// Frontier rounds executed by the parallel closure engine.
    ParRounds = 24,
    /// Proposals produced by parallel shard scans (one per frontier item).
    ParProposals = 25,
    /// Proposals applied by the deterministic commit phase.
    ParCommits = 26,
    /// Shard scans executed (rounds × active shards).
    ParShardScans = 27,
    /// Commit broadcasts executed: pool dispatches that ran one *batch* of
    /// up to `K` propose/commit rounds. Equal to `par.rounds` at `K = 1`;
    /// strictly smaller once batching amortizes dispatch.
    ParCommitBroadcasts = 28,
    /// Batches that ran their full `K` rounds (did not drain the frontier or
    /// hit the work bound early).
    ParBatchFull = 29,
    /// Periodic cycle sweeps run at batch round boundaries
    /// (`CycleElim::Periodic` under the frontier engine).
    ParBatchSweeps = 30,

    // -- search-kernel overhaul (DESIGN.md §4d) ---------------------------
    /// Bounded cycle searches answered from the negative-verdict memo
    /// without traversal.
    SearchMemoHit = 31,
    /// Bounded cycle searches that ran a live traversal (memo miss or memo
    /// disabled/invalidated).
    SearchMemoMiss = 32,
    /// Physical wraparound resets of epoch-stamped visited sets (once per
    /// 2^32 generations per set; expected 0 on real runs).
    EpochResets = 33,
    /// CSR snapshots built for the least-solution kernel.
    CsrBuilds = 34,

    // -- difference propagation (DESIGN.md §4f) ---------------------------
    /// Least-solution variables evaluated by a full merge (first visit, or
    /// difference propagation off).
    LsDeltaFull = 35,
    /// Least-solution variables evaluated incrementally from predecessor
    /// deltas.
    LsDeltaIncr = 36,
    /// Elements fed into incremental merges (the traffic difference
    /// propagation still pays for).
    LsDeltaIn = 37,
    /// Elements those merges actually added; `in - fresh` is the redundant
    /// traffic that difference propagation exposes.
    LsDeltaFresh = 38,

    // -- solution-set backends (DESIGN.md §4f) ----------------------------
    /// Distinct 256-bit payload blocks interned by the bitmap/hybrid
    /// backends' shared arena.
    SolsetBlocks = 39,
    /// Interns answered by an existing block (payloads physically shared
    /// across variables).
    SolsetBlocksShared = 40,
    /// Hybrid rows promoted from sorted-span to bitmap past the density
    /// threshold.
    SolsetPromotions = 41,
    /// Approximate heap bytes held by the active backend's set storage.
    SolsetBytes = 42,

    // -- snapshot serving (bane-snap, docs/SERVING.md) --------------------
    /// Bytes written by the on-disk snapshot writer (file size including
    /// header and padding).
    SnapBytesWritten = 43,
    /// Snapshot files loaded into a `QueryIndex`.
    SnapLoads = 44,
    /// Bytes mapped (or copied into the owned-buffer fallback) by loads.
    SnapBytesMapped = 45,
    /// Queries answered by `QueryIndex` (only counted when a recorder is
    /// attached to the instrumented entry points; the lock-free hot path
    /// itself is uninstrumented).
    SnapQueries = 46,

    // -- incremental serving (bane-serve, docs/INCREMENTAL.md) ------------
    /// `Delta` batches applied to a live `Session`.
    ServeDeltaApplied = 47,
    /// Deltas taken through the monotone fast path (constraints fed into
    /// the live solver; prior sets reused as lower bounds).
    ServeDeltaMonotone = 48,
    /// Deltas that removed constraints and fell back to replaying the
    /// canonical constraint sequence into a fresh solver.
    ServeDeltaReplayed = 49,
    /// SCC condensation levels containing at least one dirty variable in
    /// the most recent re-solve (gauge; compare against the level total).
    ServeDirtyLevels = 50,
    /// Variables whose least-solution span was recomputed in the most
    /// recent re-solve (gauge).
    ServeDirtyVars = 51,
    /// Variables whose retained least-solution span was reused verbatim
    /// across a `Delta` application.
    ServeReuseHit = 52,

    // -- fleet serving (bane-serve ShardManager, docs/SERVING.md) ---------
    /// Per-shard deltas dispatched by the fleet router (one per shard a
    /// batch actually touched).
    FleetDeltaRouted = 53,
    /// Variable creations replicated across the fleet by the `AddVars`
    /// fan-out (`n` requested vars on an `S`-shard fleet count `n * S`).
    FleetVarsFanout = 54,
    /// Delta batches rejected atomically at the shard boundary (a group
    /// straddled owner classes, moved owners, or named a dead group).
    FleetRejectCrossShard = 55,
    /// Per-shard snapshots republished into a `SnapshotHub`.
    FleetPublish = 56,

    // -- provenance fast-apply (bane-serve ApplyMode::Fast) ---------------
    /// Non-monotone deltas repaired in place by the provenance fast path
    /// (retraction + semi-naive refire, no replay).
    ServeFastRepaired = 57,
    /// Non-monotone deltas on a Fast session that invalidated a recorded
    /// cycle collapse and fell back to canonical replay.
    ServeFastFallback = 58,
    /// Graph edges removed by provenance retraction across fast repairs.
    ServeFastRetractedEdges = 59,
    /// Smallest per-shard live-constraint count across the fleet (gauge;
    /// refreshed by `ShardManager` after every routed batch).
    FleetBalanceMin = 60,
    /// Largest per-shard live-constraint count across the fleet (gauge).
    FleetBalanceMax = 61,
}

impl Counter {
    /// Number of registered counters.
    pub const COUNT: usize = 62;

    /// Every counter, in canonical report order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::ConstraintsAdded,
        Counter::ConstraintsProcessed,
        Counter::ConstraintsTerm,
        Counter::ConstraintsSelf,
        Counter::WorkTotal,
        Counter::WorkRedundant,
        Counter::WorkResolutions,
        Counter::SearchCount,
        Counter::SearchNodesVisited,
        Counter::SearchEdgesScanned,
        Counter::SearchMaxVisits,
        Counter::CycleFound,
        Counter::CycleCollapsed,
        Counter::CycleVarsEliminated,
        Counter::OracleAliased,
        Counter::AdjPromotions,
        Counter::CensusEdges,
        Counter::CensusPeakEdges,
        Counter::CensusLiveVars,
        Counter::LsSetVars,
        Counter::LsEntries,
        Counter::GenConstraints,
        Counter::GenLocations,
        Counter::ErrorsInconsistencies,
        Counter::ParRounds,
        Counter::ParProposals,
        Counter::ParCommits,
        Counter::ParShardScans,
        Counter::ParCommitBroadcasts,
        Counter::ParBatchFull,
        Counter::ParBatchSweeps,
        Counter::SearchMemoHit,
        Counter::SearchMemoMiss,
        Counter::EpochResets,
        Counter::CsrBuilds,
        Counter::LsDeltaFull,
        Counter::LsDeltaIncr,
        Counter::LsDeltaIn,
        Counter::LsDeltaFresh,
        Counter::SolsetBlocks,
        Counter::SolsetBlocksShared,
        Counter::SolsetPromotions,
        Counter::SolsetBytes,
        Counter::SnapBytesWritten,
        Counter::SnapLoads,
        Counter::SnapBytesMapped,
        Counter::SnapQueries,
        Counter::ServeDeltaApplied,
        Counter::ServeDeltaMonotone,
        Counter::ServeDeltaReplayed,
        Counter::ServeDirtyLevels,
        Counter::ServeDirtyVars,
        Counter::ServeReuseHit,
        Counter::FleetDeltaRouted,
        Counter::FleetVarsFanout,
        Counter::FleetRejectCrossShard,
        Counter::FleetPublish,
        Counter::ServeFastRepaired,
        Counter::ServeFastFallback,
        Counter::ServeFastRetractedEdges,
        Counter::FleetBalanceMin,
        Counter::FleetBalanceMax,
    ];

    /// The stable dotted name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::ConstraintsAdded => "constraints.added",
            Counter::ConstraintsProcessed => "constraints.processed",
            Counter::ConstraintsTerm => "constraints.term",
            Counter::ConstraintsSelf => "constraints.self",
            Counter::WorkTotal => "work.total",
            Counter::WorkRedundant => "work.redundant",
            Counter::WorkResolutions => "work.resolutions",
            Counter::SearchCount => "search.count",
            Counter::SearchNodesVisited => "search.nodes-visited",
            Counter::SearchEdgesScanned => "search.edges-scanned",
            Counter::SearchMaxVisits => "search.max-visits",
            Counter::CycleFound => "cycle.found",
            Counter::CycleCollapsed => "cycle.collapsed",
            Counter::CycleVarsEliminated => "cycle.vars-eliminated",
            Counter::OracleAliased => "oracle.aliased",
            Counter::AdjPromotions => "adj.promotions",
            Counter::CensusEdges => "census.edges",
            Counter::CensusPeakEdges => "census.peak-edges",
            Counter::CensusLiveVars => "census.live-vars",
            Counter::LsSetVars => "ls.set-vars",
            Counter::LsEntries => "ls.entries",
            Counter::GenConstraints => "gen.constraints",
            Counter::GenLocations => "gen.locations",
            Counter::ErrorsInconsistencies => "errors.inconsistencies",
            Counter::ParRounds => "par.rounds",
            Counter::ParProposals => "par.proposals",
            Counter::ParCommits => "par.commits",
            Counter::ParShardScans => "par.shard-scans",
            Counter::ParCommitBroadcasts => "par.commit.broadcasts",
            Counter::ParBatchFull => "par.batch.full",
            Counter::ParBatchSweeps => "par.batch.sweeps",
            Counter::SearchMemoHit => "search.memo.hit",
            Counter::SearchMemoMiss => "search.memo.miss",
            Counter::EpochResets => "epoch.resets",
            Counter::CsrBuilds => "csr.build",
            Counter::LsDeltaFull => "ls.delta.full",
            Counter::LsDeltaIncr => "ls.delta.incr",
            Counter::LsDeltaIn => "ls.delta.in",
            Counter::LsDeltaFresh => "ls.delta.fresh",
            Counter::SolsetBlocks => "solset.blocks",
            Counter::SolsetBlocksShared => "solset.blocks-shared",
            Counter::SolsetPromotions => "solset.promotions",
            Counter::SolsetBytes => "solset.bytes",
            Counter::SnapBytesWritten => "snap.bytes-written",
            Counter::SnapLoads => "snap.loads",
            Counter::SnapBytesMapped => "snap.bytes-mapped",
            Counter::SnapQueries => "snap.queries",
            Counter::ServeDeltaApplied => "serve.delta.applied",
            Counter::ServeDeltaMonotone => "serve.delta.monotone",
            Counter::ServeDeltaReplayed => "serve.delta.replayed",
            Counter::ServeDirtyLevels => "serve.dirty.levels",
            Counter::ServeDirtyVars => "serve.dirty.vars",
            Counter::ServeReuseHit => "serve.reuse.hit",
            Counter::FleetDeltaRouted => "fleet.delta.routed",
            Counter::FleetVarsFanout => "fleet.vars.fanout",
            Counter::FleetRejectCrossShard => "fleet.reject.cross-shard",
            Counter::FleetPublish => "fleet.publish",
            Counter::ServeFastRepaired => "serve.fast.repaired",
            Counter::ServeFastFallback => "serve.fast.fallback",
            Counter::ServeFastRetractedEdges => "serve.fast.retracted-edges",
            Counter::FleetBalanceMin => "fleet.balance.min",
            Counter::FleetBalanceMax => "fleet.balance.max",
        }
    }

    /// The counter with the given stable name, if any.
    pub fn by_name(name: &str) -> Option<Counter> {
        Counter::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Fixed-size counter store, indexed by [`Counter`]. See the
/// [module docs](self).
///
/// `Sync` by construction: every slot is an [`AtomicU64`], so one
/// `&Counters` can be shared across worker threads and every probe remains
/// lock- and allocation-free.
#[derive(Debug)]
pub struct Counters {
    values: [AtomicU64; Counter::COUNT],
}

impl Default for Counters {
    fn default() -> Self {
        Counters { values: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl Clone for Counters {
    fn clone(&self) -> Self {
        Counters {
            values: std::array::from_fn(|i| {
                AtomicU64::new(self.values[i].load(Ordering::Relaxed))
            }),
        }
    }
}

impl Counters {
    /// A fresh, all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to `counter`, saturating at `u64::MAX`.
    ///
    /// Safe to call concurrently from any number of threads; saturation is
    /// preserved under contention (a compare-exchange loop, not a blind
    /// `fetch_add` that could wrap).
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        let slot = &self.values[counter as usize];
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match slot.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Overwrites `counter` with `value` (for gauge-style figures like the
    /// census, where the source of truth is elsewhere).
    #[inline]
    pub fn set(&self, counter: Counter, value: u64) {
        self.values[counter as usize].store(value, Ordering::Relaxed);
    }

    /// Raises `counter` to `value` if `value` is larger (for maxima like
    /// `search.max-visits`).
    #[inline]
    pub fn max(&self, counter: Counter, value: u64) {
        self.values[counter as usize].fetch_max(value, Ordering::Relaxed);
    }

    /// Reads `counter`.
    #[inline]
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter as usize].load(Ordering::Relaxed)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for slot in &self.values {
            slot.store(0, Ordering::Relaxed);
        }
    }

    /// Every counter with a non-zero value, as `(name, value)` pairs in
    /// [`Counter::ALL`] order — the report form.
    pub fn nonzero(&self) -> Vec<(String, u64)> {
        Counter::ALL
            .into_iter()
            .filter(|c| self.get(*c) != 0)
            .map(|c| (c.name().to_string(), self.get(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in Counter::ALL {
            assert!(seen.insert(c.name()), "duplicate name {}", c.name());
            assert_eq!(Counter::by_name(c.name()), Some(c));
        }
        assert_eq!(seen.len(), Counter::COUNT);
        assert_eq!(Counter::by_name("work.nope"), None);
    }

    #[test]
    fn add_saturates_instead_of_wrapping() {
        let c = Counters::new();
        c.add(Counter::WorkTotal, u64::MAX - 5);
        c.add(Counter::WorkTotal, 3);
        assert_eq!(c.get(Counter::WorkTotal), u64::MAX - 2);
        c.add(Counter::WorkTotal, 10);
        assert_eq!(c.get(Counter::WorkTotal), u64::MAX, "saturated, not wrapped");
        c.add(Counter::WorkTotal, 1);
        assert_eq!(c.get(Counter::WorkTotal), u64::MAX);
    }

    #[test]
    fn set_and_max_semantics() {
        let c = Counters::new();
        c.set(Counter::CensusEdges, 100);
        c.set(Counter::CensusEdges, 40);
        assert_eq!(c.get(Counter::CensusEdges), 40, "set overwrites");
        c.max(Counter::SearchMaxVisits, 7);
        c.max(Counter::SearchMaxVisits, 3);
        assert_eq!(c.get(Counter::SearchMaxVisits), 7, "max keeps the peak");
    }

    #[test]
    fn nonzero_reports_in_canonical_order() {
        let c = Counters::new();
        c.add(Counter::LsEntries, 2);
        c.add(Counter::WorkTotal, 9);
        let rows = c.nonzero();
        assert_eq!(
            rows,
            vec![("work.total".to_string(), 9), ("ls.entries".to_string(), 2)]
        );
    }

    #[test]
    fn counters_are_sync_and_sum_correctly_across_threads() {
        let c = Counters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.add(Counter::ParProposals, 1);
                    }
                    c.max(Counter::SearchMaxVisits, 17);
                });
            }
        });
        assert_eq!(c.get(Counter::ParProposals), 4000);
        assert_eq!(c.get(Counter::SearchMaxVisits), 17);
    }

    #[test]
    fn clone_and_reset() {
        let c = Counters::new();
        c.add(Counter::WorkTotal, 5);
        let d = c.clone();
        c.reset();
        assert_eq!(c.get(Counter::WorkTotal), 0);
        assert_eq!(d.get(Counter::WorkTotal), 5, "clone is a snapshot");
    }
}
