//! Hierarchical phase timers.
//!
//! A [`Timers`] accumulates wall time per [`Phase`]. Phases nest: while a
//! phase is active, time spent in phases started inside it is attributed to
//! the child *and* charged against the parent's `child_ns`, so each phase
//! reports both **total** time (inclusive of children) and **self** time
//! (exclusive). Nesting is tracked by a runtime stack, so the hierarchy is
//! whatever the call structure actually was — no static tree to declare.
//!
//! Two APIs, same accounting:
//!
//! - [`Timers::scope`] returns a [`PhaseGuard`] that stops the phase on
//!   drop — the structured option, immune to early returns.
//! - [`Timers::start`] / [`Timers::stop`] for hot paths inside `&mut self`
//!   methods where holding a guard across a call would fight the borrow
//!   checker. Calls must pair up; a mismatched stop panics in debug builds
//!   and pops the innermost frame in release builds.
//!
//! All methods take `&self` (interior mutability) so guards can nest and
//! probes can fire from anywhere. Steady-state use performs no heap
//! allocation: the per-phase slots are a fixed array and the nesting stack
//! preallocates [`MAX_DEPTH`] frames.

use std::cell::RefCell;
use std::time::Instant;

/// Maximum practical nesting depth preallocated by the timer stack.
///
/// Exceeding it is not an error — the stack grows — but the growth
/// allocates, so probes deeper than this void the steady-state
/// allocation-free guarantee. The solver's deepest real chain is
/// `resolve → edge-insert → cycle-detect`/`collapse`, depth 3.
pub const MAX_DEPTH: usize = 32;

/// A solver phase, the unit of time attribution.
///
/// The variants mirror the stages of a full run as `docs/OBSERVABILITY.md`
/// documents them; [`Phase::ALL`] fixes the report order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Constraint generation (the points-to / cfa / synth drivers).
    Generate = 0,
    /// The resolution worklist loop (`Solver::solve` / `solve_limited`).
    Resolve = 1,
    /// Edge insertion plus the closure-rule fan-out it triggers.
    EdgeInsert = 2,
    /// Partial online chain searches (Section 2.5).
    CycleDetect = 3,
    /// Cycle collapse: forwarding members into the witness and re-asserting
    /// their edges.
    Collapse = 4,
    /// Periodic offline Tarjan passes (`CycleElim::Periodic` only).
    OfflinePass = 5,
    /// Building the oracle partition from a converged run's logs.
    OraclePartition = 6,
    /// The least-solution pass (Section 2.4, equation (1)).
    LeastSolution = 7,
    /// Parallel frontier scan: workers proposing edges against the frozen
    /// graph (`bane-par`, docs/PARALLELISM.md). One call per shard scan.
    ParScan = 8,
    /// Deterministic commit of a round's proposals (`bane-par`).
    ParCommit = 9,
    /// The SCC-level-parallel least-solution pass (`bane-par`).
    ParLeast = 10,
    /// One batched frontier broadcast: up to `K` propose/commit rounds
    /// executed inside a single pool dispatch (`bane-par` batching).
    /// Encloses the per-round `ParScan`/`ParCommit` attributions.
    ParBatch = 11,
    /// Freezing the post-closure graph into the CSR least-solution snapshot
    /// (DESIGN.md §4d). Nested inside `LeastSolution`/`ParLeast`.
    CsrBuild = 12,
    /// Loading an on-disk snapshot into a read-only `QueryIndex`
    /// (`bane-snap`, docs/SERVING.md): open, map/read, validate, checksum.
    SnapLoad = 13,
    /// Applying a `Delta` batch to a live `Session` (`bane-serve`,
    /// docs/INCREMENTAL.md): dirty-set computation, re-solve, and the
    /// level-restricted least-solution revalidation.
    ServeApply = 14,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 15;

    /// Every phase, in canonical report order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Generate,
        Phase::Resolve,
        Phase::EdgeInsert,
        Phase::CycleDetect,
        Phase::Collapse,
        Phase::OfflinePass,
        Phase::OraclePartition,
        Phase::LeastSolution,
        Phase::ParScan,
        Phase::ParCommit,
        Phase::ParLeast,
        Phase::ParBatch,
        Phase::CsrBuild,
        Phase::SnapLoad,
        Phase::ServeApply,
    ];

    /// The stable name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Generate => "generate",
            Phase::Resolve => "resolve",
            Phase::EdgeInsert => "edge-insert",
            Phase::CycleDetect => "cycle-detect",
            Phase::Collapse => "collapse",
            Phase::OfflinePass => "offline-pass",
            Phase::OraclePartition => "oracle-partition",
            Phase::LeastSolution => "least-solution",
            Phase::ParScan => "par-scan",
            Phase::ParCommit => "par-commit",
            Phase::ParLeast => "par-least",
            Phase::ParBatch => "par-batch",
            Phase::CsrBuild => "csr-build",
            Phase::SnapLoad => "snap-load",
            Phase::ServeApply => "serve-apply",
        }
    }

    /// The phase with the given stable name, if any.
    pub fn by_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Accumulated figures for one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Completed `start`/`stop` pairs.
    pub calls: u64,
    /// Total elapsed nanoseconds, inclusive of nested phases.
    pub total_ns: u64,
    /// Nanoseconds attributed to phases nested inside this one.
    pub child_ns: u64,
}

impl PhaseSnapshot {
    /// Time spent in the phase itself, excluding nested phases.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }
}

#[derive(Clone, Copy, Debug)]
struct Frame {
    phase: Phase,
    start: Instant,
    child_ns: u64,
}

/// The hierarchical phase-timer set. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct Timers {
    slots: RefCell<[PhaseSnapshot; Phase::COUNT]>,
    stack: RefCell<Vec<Frame>>,
}

impl Default for Timers {
    fn default() -> Self {
        Timers {
            slots: RefCell::new([PhaseSnapshot::default(); Phase::COUNT]),
            stack: RefCell::new(Vec::with_capacity(MAX_DEPTH)),
        }
    }
}

impl Timers {
    /// Fresh, empty timers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts `phase`. Must be paired with a later [`stop`](Timers::stop)
    /// of the same phase (or use [`scope`](Timers::scope)).
    #[inline]
    pub fn start(&self, phase: Phase) {
        self.stack.borrow_mut().push(Frame { phase, start: Instant::now(), child_ns: 0 });
    }

    /// Stops `phase`, accumulating its elapsed time and charging it to the
    /// enclosing phase's child time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `phase` is not the innermost started
    /// phase; release builds pop the innermost frame regardless.
    #[inline]
    pub fn stop(&self, phase: Phase) {
        let mut stack = self.stack.borrow_mut();
        let Some(frame) = stack.pop() else {
            debug_assert!(false, "stop({phase:?}) with no phase active");
            return;
        };
        debug_assert_eq!(
            frame.phase, phase,
            "mismatched stop: innermost phase is {:?}",
            frame.phase
        );
        let elapsed = frame.start.elapsed().as_nanos() as u64;
        if let Some(parent) = stack.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(elapsed);
        }
        drop(stack);
        let mut slots = self.slots.borrow_mut();
        let slot = &mut slots[frame.phase as usize];
        slot.calls += 1;
        slot.total_ns = slot.total_ns.saturating_add(elapsed);
        slot.child_ns = slot.child_ns.saturating_add(frame.child_ns);
    }

    /// Records one already-measured call of `phase` lasting `ns`
    /// nanoseconds.
    ///
    /// For spans timed *outside* this timer set — typically on a worker
    /// thread, whose clock readings are handed back to the owning thread
    /// after a barrier (the timer stack itself is single-threaded; only the
    /// counter registry is `Sync`). The span is accounted flat: it joins no
    /// parent/child attribution, so `child_ns` of any active phase is
    /// unaffected.
    #[inline]
    pub fn record_ns(&self, phase: Phase, ns: u64) {
        let mut slots = self.slots.borrow_mut();
        let slot = &mut slots[phase as usize];
        slot.calls += 1;
        slot.total_ns = slot.total_ns.saturating_add(ns);
    }

    /// Starts `phase` and returns a guard stopping it when dropped.
    pub fn scope(&self, phase: Phase) -> PhaseGuard<'_> {
        self.start(phase);
        PhaseGuard { timers: self, phase }
    }

    /// The accumulated snapshot of `phase` (completed calls only).
    pub fn get(&self, phase: Phase) -> PhaseSnapshot {
        self.slots.borrow()[phase as usize]
    }

    /// Snapshots every phase with at least one completed call, in
    /// [`Phase::ALL`] order, as report rows.
    pub fn snapshot(&self) -> Vec<crate::report::PhaseReport> {
        let slots = self.slots.borrow();
        Phase::ALL
            .into_iter()
            .filter_map(|p| {
                let s = slots[p as usize];
                (s.calls > 0).then(|| crate::report::PhaseReport {
                    phase: p.name().to_string(),
                    calls: s.calls,
                    total_ns: s.total_ns,
                    self_ns: s.self_ns(),
                })
            })
            .collect()
    }

    /// Clears all accumulated figures and any active frames.
    pub fn reset(&self) {
        *self.slots.borrow_mut() = [PhaseSnapshot::default(); Phase::COUNT];
        self.stack.borrow_mut().clear();
    }
}

/// Stops its phase when dropped. Created by [`Timers::scope`] (or
/// [`Recorder::scope`](crate::Recorder::scope)); guards may nest and must
/// drop innermost-first, which Rust's drop order guarantees for locals.
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    timers: &'a Timers,
    phase: Phase,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        self.timers.stop(self.phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spin(d: Duration) {
        let start = Instant::now();
        while start.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::by_name(p.name()), Some(p));
        }
        assert_eq!(Phase::by_name("nope"), None);
    }

    #[test]
    fn nested_phases_attribute_child_time_to_parent() {
        let t = Timers::new();
        t.start(Phase::Resolve);
        spin(Duration::from_millis(2));
        t.start(Phase::CycleDetect);
        spin(Duration::from_millis(2));
        t.stop(Phase::CycleDetect);
        t.stop(Phase::Resolve);

        let outer = t.get(Phase::Resolve);
        let inner = t.get(Phase::CycleDetect);
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(outer.total_ns >= inner.total_ns, "parent includes child");
        assert_eq!(outer.child_ns, inner.total_ns, "child charged exactly once");
        assert!(outer.self_ns() <= outer.total_ns - inner.total_ns + 1);
        assert_eq!(inner.child_ns, 0);
    }

    #[test]
    fn guards_stop_on_drop_in_reverse_creation_order() {
        let t = Timers::new();
        {
            let _outer = t.scope(Phase::Resolve);
            {
                let _mid = t.scope(Phase::EdgeInsert);
                let _inner = t.scope(Phase::CycleDetect);
                // _inner drops before _mid (reverse declaration order), so
                // the stack unwinds innermost-first without panicking.
            }
            assert_eq!(t.get(Phase::CycleDetect).calls, 1);
            assert_eq!(t.get(Phase::EdgeInsert).calls, 1);
            assert_eq!(t.get(Phase::Resolve).calls, 0, "outer still active");
        }
        assert_eq!(t.get(Phase::Resolve).calls, 1);
        // Grandchild time propagated through the middle phase to the outer.
        let outer = t.get(Phase::Resolve);
        let mid = t.get(Phase::EdgeInsert);
        assert_eq!(outer.child_ns, mid.total_ns);
    }

    #[test]
    fn same_phase_nests_recursively() {
        let t = Timers::new();
        {
            let _a = t.scope(Phase::Collapse);
            let _b = t.scope(Phase::Collapse);
        }
        let s = t.get(Phase::Collapse);
        assert_eq!(s.calls, 2);
        // The inner call's total is also the outer call's child time, so
        // self time stays <= total.
        assert!(s.self_ns() <= s.total_ns);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "mismatched stop")]
    fn mismatched_stop_panics_in_debug() {
        let t = Timers::new();
        t.start(Phase::Resolve);
        t.start(Phase::Collapse);
        t.stop(Phase::Resolve); // wrong: Collapse is innermost
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "no phase active")]
    fn stop_without_start_panics_in_debug() {
        let t = Timers::new();
        t.stop(Phase::Resolve);
    }

    #[test]
    fn snapshot_reports_only_completed_phases_in_order() {
        let t = Timers::new();
        {
            let _g = t.scope(Phase::LeastSolution);
        }
        {
            let _g = t.scope(Phase::Generate);
        }
        let rows = t.snapshot();
        let names: Vec<&str> = rows.iter().map(|r| r.phase.as_str()).collect();
        assert_eq!(names, vec!["generate", "least-solution"], "Phase::ALL order");
    }

    #[test]
    fn reset_clears_everything_including_active_frames() {
        let t = Timers::new();
        t.start(Phase::Resolve);
        t.reset();
        assert!(t.snapshot().is_empty());
        // A fresh start/stop works after reset (the dangling frame is gone).
        t.start(Phase::Resolve);
        t.stop(Phase::Resolve);
        assert_eq!(t.get(Phase::Resolve).calls, 1);
    }
}
