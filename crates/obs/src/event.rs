//! The bounded event ring buffer.
//!
//! Counters summarize; events explain. Rare occurrences — an SCC collapse,
//! an adjacency list promoted past the hybrid threshold, an inconsistency —
//! carry payloads worth keeping individually, but an unbounded log would
//! break the solver's steady-state allocation-free discipline. [`EventRing`]
//! therefore preallocates a fixed capacity once and **overwrites the
//! oldest** entry when full, keeping the most recent events and an honest
//! count of how many were dropped.
//!
//! Every pushed event gets a monotonically increasing sequence number
//! ([`EventRecord::seq`]) so reports can show ordering and gaps even after
//! wraparound.

/// Default capacity of the event ring ([`EventRing::new`] argument used by
/// `Recorder::new`). Large enough for every collapse in the paper-scale
/// benchmarks; small enough to stay cache-resident.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// A rare, individually recorded solver occurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A cycle was collapsed into its minimum-order witness.
    CycleCollapsed {
        /// Index of the witness variable the members were forwarded into.
        witness: u32,
        /// Number of variables in the collapsed cycle, witness included.
        members: u32,
    },
    /// An adjacency list crossed the degree-16 hybrid threshold and was
    /// promoted from linear-scan to hash-set mode (DESIGN.md §4b).
    ListPromoted {
        /// Index of the variable whose list was promoted.
        node: u32,
        /// Which of the node's four adjacency lists was promoted
        /// (`"pred-vars"`, `"succ-vars"`, `"pred-srcs"`, `"succ-snks"`).
        kind: &'static str,
    },
    /// An inconsistent constraint (`1 ⊆ 0`-shaped) was detected.
    Inconsistency,
    /// The resolution loop stopped early because it hit its work limit.
    WorkLimitHit {
        /// Work performed when the limit was hit.
        work: u64,
    },
}

impl Event {
    /// The stable kind tag used in reports and JSON.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::CycleCollapsed { .. } => "cycle-collapsed",
            Event::ListPromoted { .. } => "list-promoted",
            Event::Inconsistency => "inconsistency",
            Event::WorkLimitHit { .. } => "work-limit-hit",
        }
    }
}

/// An [`Event`] plus its position in the emission order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Zero-based emission index, monotone across the whole run (survives
    /// ring wraparound).
    pub seq: u64,
    /// The event payload.
    pub event: Event,
}

/// Fixed-capacity ring of the most recent events. See the
/// [module docs](self).
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: Vec<EventRecord>,
    capacity: usize,
    /// Index of the oldest record in `buf` once the ring has wrapped.
    head: usize,
    emitted: u64,
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventRing {
    /// A ring holding at most `capacity` events (at least 1), preallocated
    /// up front so pushes never allocate.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing { buf: Vec::with_capacity(capacity), capacity, head: 0, emitted: 0 }
    }

    /// Records `event`, overwriting the oldest record when full.
    #[inline]
    pub fn push(&mut self, event: Event) {
        let record = EventRecord { seq: self.emitted, event };
        self.emitted += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(record);
        } else {
            self.buf[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Total events emitted, including overwritten ones.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Number of events overwritten (lost) so far.
    pub fn dropped(&self) -> u64 {
        self.emitted - self.buf.len() as u64
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = EventRecord> + '_ {
        let (wrapped, start) = self.buf.split_at(self.head);
        start.iter().chain(wrapped.iter()).copied()
    }

    /// Forgets all retained events and resets the emission count.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.emitted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut r = EventRing::new(3);
        for w in 0..3u32 {
            r.push(Event::CycleCollapsed { witness: w, members: 2 });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);

        r.push(Event::Inconsistency);
        r.push(Event::WorkLimitHit { work: 9 });
        assert_eq!(r.len(), 3);
        assert_eq!(r.emitted(), 5);
        assert_eq!(r.dropped(), 2, "two oldest overwritten");

        let kept: Vec<EventRecord> = r.iter().collect();
        assert_eq!(kept.len(), 3);
        // Oldest-first, with gap-free sequence numbers for what's retained.
        assert_eq!(kept[0].seq, 2);
        assert_eq!(kept[0].event, Event::CycleCollapsed { witness: 2, members: 2 });
        assert_eq!(kept[1].seq, 3);
        assert_eq!(kept[1].event, Event::Inconsistency);
        assert_eq!(kept[2].seq, 4);
        assert_eq!(kept[2].event, Event::WorkLimitHit { work: 9 });
    }

    #[test]
    fn push_never_allocates_after_construction() {
        let mut r = EventRing::new(4);
        let cap_before = r.buf.capacity();
        for i in 0..100 {
            r.push(Event::WorkLimitHit { work: i });
        }
        assert_eq!(r.buf.capacity(), cap_before, "ring never grows");
    }

    #[test]
    fn clear_resets_all_accounting() {
        let mut r = EventRing::new(2);
        r.push(Event::Inconsistency);
        r.push(Event::Inconsistency);
        r.push(Event::Inconsistency);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.emitted(), 0);
        assert_eq!(r.dropped(), 0);
        r.push(Event::WorkLimitHit { work: 1 });
        let kept: Vec<EventRecord> = r.iter().collect();
        assert_eq!(kept[0].seq, 0, "sequence restarts after clear");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = EventRing::new(0);
        r.push(Event::Inconsistency);
        r.push(Event::WorkLimitHit { work: 3 });
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.iter().next().unwrap().event, Event::WorkLimitHit { work: 3 });
    }

    #[test]
    fn event_kinds_are_stable() {
        assert_eq!(Event::CycleCollapsed { witness: 0, members: 0 }.kind(), "cycle-collapsed");
        assert_eq!(Event::ListPromoted { node: 0, kind: "pred-vars" }.kind(), "list-promoted");
        assert_eq!(Event::Inconsistency.kind(), "inconsistency");
        assert_eq!(Event::WorkLimitHit { work: 0 }.kind(), "work-limit-hit");
    }
}
