//! Structured run reports: the JSON-serializable snapshot of a recorder.
//!
//! A [`RunReport`] is what crosses the crate boundary: `bane-core` builds
//! one from its recorder at the end of a run, `bench_json` embeds it in
//! `BENCH_n.json` snapshots, and the `--report` flag writes a suite-level
//! [merge](RunReport::merge) of all benchmarks. The JSON schema is tagged
//! `"bane-obs/1"` and documented field-by-field in `docs/OBSERVABILITY.md`;
//! [`RunReport::from_json`] round-trips exactly what
//! [`RunReport::to_json`] writes, which the golden-file test in
//! `bane-bench` pins.

use crate::event::{Event, EventRecord};
use crate::json::{self, Value};

/// Schema tag written into every serialized report.
pub const SCHEMA: &str = "bane-obs/1";

/// One row of the phase-timing table: accumulated figures for a phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseReport {
    /// Stable phase name (see [`Phase::name`](crate::Phase::name)).
    pub phase: String,
    /// Completed `start`/`stop` pairs.
    pub calls: u64,
    /// Total nanoseconds, inclusive of nested phases.
    pub total_ns: u64,
    /// Nanoseconds excluding nested phases.
    pub self_ns: u64,
}

/// A complete, self-describing snapshot of one run's observability data.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Free-form run label (benchmark name, experiment config, …).
    pub label: String,
    /// Per-phase timing rows, in canonical phase order.
    pub phases: Vec<PhaseReport>,
    /// `(name, value)` pairs for every non-zero counter, in canonical
    /// counter order.
    pub counters: Vec<(String, u64)>,
    /// The retained tail of the event ring, oldest first.
    pub events: Vec<EventRecord>,
    /// Events overwritten by the ring before this snapshot.
    pub events_dropped: u64,
}

impl RunReport {
    /// The value of counter `name`, if present (i.e. non-zero at snapshot
    /// time).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Derived `work.redundant / work.total`, when both counters are
    /// present and work was done. Rendered by
    /// [`render_table`](RunReport::render_table) and surfaced in bench
    /// summary rows; never serialized as a counter (the JSON schema stores
    /// only raw monotonic figures).
    pub fn redundant_ratio(&self) -> Option<f64> {
        let total = self.counter("work.total")?;
        let redundant = self.counter("work.redundant")?;
        (total > 0).then(|| redundant as f64 / total as f64)
    }

    /// The timing row for phase `name`, if it ran.
    pub fn phase(&self, name: &str) -> Option<&PhaseReport> {
        self.phases.iter().find(|p| p.phase == name)
    }

    /// Folds `other` into `self` for suite-level aggregation: phase rows
    /// and counters are summed by name (saturating), retained events are
    /// appended (their `seq` stays relative to the source run), and drop
    /// counts accumulate. The label is kept from `self`.
    pub fn merge(&mut self, other: &RunReport) {
        for row in &other.phases {
            match self.phases.iter_mut().find(|p| p.phase == row.phase) {
                Some(mine) => {
                    mine.calls = mine.calls.saturating_add(row.calls);
                    mine.total_ns = mine.total_ns.saturating_add(row.total_ns);
                    mine.self_ns = mine.self_ns.saturating_add(row.self_ns);
                }
                None => self.phases.push(row.clone()),
            }
        }
        for (name, value) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine = mine.saturating_add(*value),
                None => self.counters.push((name.clone(), *value)),
            }
        }
        self.events.extend(other.events.iter().copied());
        self.events_dropped = self.events_dropped.saturating_add(other.events_dropped);
    }

    /// Serializes the report as a single-line JSON object tagged with
    /// [`SCHEMA`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\": ");
        out.push_str(&json::string(SCHEMA));
        out.push_str(", \"label\": ");
        out.push_str(&json::string(&self.label));
        out.push_str(", \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"phase\": {}, \"calls\": {}, \"total_ns\": {}, \"self_ns\": {}}}",
                json::string(&p.phase),
                p.calls,
                p.total_ns,
                p.self_ns
            ));
        }
        out.push_str("], \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json::string(name));
            out.push_str(": ");
            out.push_str(&value.to_string());
        }
        out.push_str("}, \"events\": [");
        for (i, rec) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_event(&mut out, rec);
        }
        out.push_str(&format!("], \"events_dropped\": {}}}", self.events_dropped));
        out
    }

    /// Parses a report previously written by [`to_json`](RunReport::to_json).
    ///
    /// Fails on malformed JSON, an unknown schema tag, or a record that
    /// doesn't match the documented shape.
    pub fn from_json(input: &str) -> Result<RunReport, String> {
        let value = json::parse(input).map_err(|e| e.to_string())?;
        let schema = value
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema tag")?;
        if schema != SCHEMA {
            return Err(format!("unknown schema {schema:?} (expected {SCHEMA:?})"));
        }
        let label = value
            .get("label")
            .and_then(Value::as_str)
            .ok_or("missing label")?
            .to_string();

        let mut phases = Vec::new();
        for row in value.get("phases").and_then(Value::as_arr).ok_or("missing phases")? {
            phases.push(PhaseReport {
                phase: row
                    .get("phase")
                    .and_then(Value::as_str)
                    .ok_or("phase row missing name")?
                    .to_string(),
                calls: field_u64(row, "calls")?,
                total_ns: field_u64(row, "total_ns")?,
                self_ns: field_u64(row, "self_ns")?,
            });
        }

        let Some(Value::Obj(counter_fields)) = value.get("counters") else {
            return Err("missing counters".to_string());
        };
        let mut counters = Vec::new();
        for (name, v) in counter_fields {
            let v = v.as_u64().ok_or_else(|| format!("counter {name} not a u64"))?;
            counters.push((name.clone(), v));
        }

        let mut events = Vec::new();
        for rec in value.get("events").and_then(Value::as_arr).ok_or("missing events")? {
            events.push(parse_event(rec)?);
        }

        Ok(RunReport {
            label,
            phases,
            counters,
            events,
            events_dropped: field_u64(&value, "events_dropped")?,
        })
    }

    /// Renders the report as a human-readable table (phases, counters, and
    /// an event summary) for terminal output.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("run report: {}\n", self.label));

        if !self.phases.is_empty() {
            let name_w = self
                .phases
                .iter()
                .map(|p| p.phase.len())
                .chain(["phase".len()])
                .max()
                .unwrap_or(5);
            out.push_str(&format!(
                "  {:<name_w$}  {:>10}  {:>12}  {:>12}\n",
                "phase", "calls", "total", "self"
            ));
            for p in &self.phases {
                out.push_str(&format!(
                    "  {:<name_w$}  {:>10}  {:>12}  {:>12}\n",
                    p.phase,
                    p.calls,
                    fmt_ns(p.total_ns),
                    fmt_ns(p.self_ns)
                ));
            }
        }

        if !self.counters.is_empty() {
            // Derived figure, not a stored counter (and not in the JSON
            // schema): fraction of the paper's Work that was redundant
            // edge traffic — the number difference propagation shrinks.
            let ratio = self.redundant_ratio();
            let name_w = self
                .counters
                .iter()
                .map(|(n, _)| n.len())
                .chain(["counter".len()])
                .chain(ratio.map(|_| "work.redundant-ratio".len()))
                .max()
                .unwrap_or(7);
            out.push_str(&format!("  {:<name_w$}  {:>14}\n", "counter", "value"));
            for (name, value) in &self.counters {
                out.push_str(&format!("  {:<name_w$}  {:>14}\n", name, value));
            }
            if let Some(ratio) = ratio {
                out.push_str(&format!(
                    "  {:<name_w$}  {:>14.4}\n",
                    "work.redundant-ratio", ratio
                ));
            }
        }

        let emitted = self.events.len() as u64 + self.events_dropped;
        if emitted > 0 {
            out.push_str(&format!(
                "  events: {} retained, {} dropped ({} emitted)\n",
                self.events.len(),
                self.events_dropped,
                emitted
            ));
        }
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn field_u64(obj: &Value, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-u64 field {key:?}"))
}

fn write_event(out: &mut String, rec: &EventRecord) {
    out.push_str(&format!(
        "{{\"seq\": {}, \"kind\": {}",
        rec.seq,
        json::string(rec.event.kind())
    ));
    match rec.event {
        Event::CycleCollapsed { witness, members } => {
            out.push_str(&format!(", \"witness\": {witness}, \"members\": {members}"));
        }
        Event::ListPromoted { node, kind } => {
            out.push_str(&format!(", \"node\": {node}, \"list\": {}", json::string(kind)));
        }
        Event::Inconsistency => {}
        Event::WorkLimitHit { work } => {
            out.push_str(&format!(", \"work\": {work}"));
        }
    }
    out.push('}');
}

fn parse_event(rec: &Value) -> Result<EventRecord, String> {
    let seq = field_u64(rec, "seq")?;
    let kind = rec.get("kind").and_then(Value::as_str).ok_or("event missing kind")?;
    let event = match kind {
        "cycle-collapsed" => Event::CycleCollapsed {
            witness: field_u64(rec, "witness")? as u32,
            members: field_u64(rec, "members")? as u32,
        },
        "list-promoted" => Event::ListPromoted {
            node: field_u64(rec, "node")? as u32,
            kind: match rec.get("list").and_then(Value::as_str) {
                Some("pred-vars") => "pred-vars",
                Some("succ-vars") => "succ-vars",
                Some("pred-srcs") => "pred-srcs",
                Some("succ-snks") => "succ-snks",
                _ => return Err("list-promoted event with unknown list".to_string()),
            },
        },
        "inconsistency" => Event::Inconsistency,
        "work-limit-hit" => Event::WorkLimitHit { work: field_u64(rec, "work")? },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(EventRecord { seq, event })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            label: "povray-2.2/if-online".to_string(),
            phases: vec![
                PhaseReport {
                    phase: "resolve".to_string(),
                    calls: 1,
                    total_ns: 25_000_000,
                    self_ns: 11_000_000,
                },
                PhaseReport {
                    phase: "cycle-detect".to_string(),
                    calls: 4200,
                    total_ns: 14_000_000,
                    self_ns: 14_000_000,
                },
            ],
            counters: vec![
                ("work.total".to_string(), 123_456),
                ("search.edges-scanned".to_string(), u64::MAX),
            ],
            events: vec![
                EventRecord { seq: 0, event: Event::CycleCollapsed { witness: 7, members: 3 } },
                EventRecord {
                    seq: 1,
                    event: Event::ListPromoted { node: 12, kind: "succ-vars" },
                },
                EventRecord { seq: 2, event: Event::Inconsistency },
                EventRecord { seq: 3, event: Event::WorkLimitHit { work: 99 } },
            ],
            events_dropped: 5,
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample();
        let json = report.to_json();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        // And the serialization itself is stable (byte-identical re-emit).
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_shapes() {
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json("not json").is_err());
        let wrong_schema = sample().to_json().replace("bane-obs/1", "bane-obs/999");
        assert!(RunReport::from_json(&wrong_schema).unwrap_err().contains("unknown schema"));
        let bad_event =
            r#"{"schema": "bane-obs/1", "label": "x", "phases": [], "counters": {}, "events": [{"seq": 0, "kind": "mystery"}], "events_dropped": 0}"#;
        assert!(RunReport::from_json(bad_event).unwrap_err().contains("unknown event kind"));
    }

    #[test]
    fn counter_and_phase_lookup() {
        let report = sample();
        assert_eq!(report.counter("work.total"), Some(123_456));
        assert_eq!(report.counter("work.missing"), None);
        assert_eq!(report.phase("resolve").unwrap().calls, 1);
        assert!(report.phase("generate").is_none());
    }

    #[test]
    fn merge_sums_by_name_and_accumulates_drops() {
        let mut a = sample();
        let mut b = sample();
        b.label = "other".to_string();
        b.phases.push(PhaseReport {
            phase: "least-solution".to_string(),
            calls: 1,
            total_ns: 5,
            self_ns: 5,
        });
        b.counters.push(("ls.entries".to_string(), 8));
        a.merge(&b);

        assert_eq!(a.label, "povray-2.2/if-online", "label kept from self");
        assert_eq!(a.phase("resolve").unwrap().calls, 2);
        assert_eq!(a.phase("resolve").unwrap().total_ns, 50_000_000);
        assert_eq!(a.phase("least-solution").unwrap().total_ns, 5);
        assert_eq!(a.counter("work.total"), Some(246_912));
        assert_eq!(a.counter("search.edges-scanned"), Some(u64::MAX), "saturates");
        assert_eq!(a.counter("ls.entries"), Some(8));
        assert_eq!(a.events.len(), 8);
        assert_eq!(a.events_dropped, 10);
    }

    #[test]
    fn render_table_mentions_every_section() {
        let table = sample().render_table();
        assert!(table.contains("povray-2.2/if-online"));
        assert!(table.contains("resolve"));
        assert!(table.contains("work.total"));
        assert!(table.contains("123456"));
        assert!(table.contains("5 dropped"));
        assert!(table.contains("25.000ms"));
        // `work.redundant` is absent from the sample, so no derived row.
        assert!(!table.contains("work.redundant-ratio"));
    }

    #[test]
    fn redundant_ratio_is_derived_not_stored() {
        let mut report = sample();
        assert_eq!(report.redundant_ratio(), None);
        report.counters.push(("work.redundant".to_string(), 30_864));
        let ratio = report.redundant_ratio().expect("both counters present");
        assert!((ratio - 30_864.0 / 123_456.0).abs() < 1e-12);
        let table = report.render_table();
        assert!(table.contains("work.redundant-ratio"));
        assert!(table.contains("0.2500"));
        // Round-trips never carry the derived row: it is display-only.
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert!(back.counter("work.redundant-ratio").is_none());
        assert_eq!(back.redundant_ratio(), report.redundant_ratio());
        // Zero work yields no ratio rather than a NaN.
        let mut zero = sample();
        zero.counters = vec![
            ("work.total".to_string(), 0),
            ("work.redundant".to_string(), 0),
        ];
        assert_eq!(zero.redundant_ratio(), None);
    }
}
