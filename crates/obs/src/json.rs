//! Minimal JSON writer and parser.
//!
//! The build is offline — no serde — so report serialization is hand-rolled.
//! The writer side is a handful of escape/format helpers used by
//! [`RunReport::to_json`](crate::RunReport::to_json) (and by `bench_json` in
//! `bane-bench`). The parser side is a small recursive-descent reader over a
//! [`Value`] tree, sufficient for round-tripping reports and for the golden
//! schema tests.
//!
//! Numbers that look like non-negative integers parse as [`Value::Int`]
//! (`u64`), everything else numeric as [`Value::Float`]; this keeps 64-bit
//! counters exact through a round trip instead of squeezing them through an
//! `f64`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact.
    Int(u64),
    /// Any other number.
    Float(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` on other variants or missing key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a quoted, escaped JSON string.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_str(&mut out, s);
    out
}

/// A parse failure, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as a single JSON document.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for report data;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar. The input is a &str, so
                    // slicing at char boundaries is safe via chars().
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-1.5").unwrap(), Value::Float(-1.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".to_string()));
    }

    #[test]
    fn u64_counters_stay_exact() {
        let big = u64::MAX;
        let parsed = parse(&big.to_string()).unwrap();
        assert_eq!(parsed, Value::Int(big), "no f64 precision loss");
    }

    #[test]
    fn parses_nested_structures_preserving_key_order() {
        let v = parse(r#"{"b": [1, {"x": null}], "a": "s"}"#).unwrap();
        let Value::Obj(fields) = &v else { panic!() };
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
        assert_eq!(v.get("a").unwrap().as_str(), Some("s"));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Value::Int(1));
        assert_eq!(arr[1].get("x"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}f — unicode";
        let encoded = string(original);
        let parsed = parse(&encoded).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
