//! Solver observability: phase timers, counters, events, and run reports.
//!
//! The paper's entire empirical argument (§6, Tables 2–4) rests on being able
//! to *measure* the solver — Work, edges scanned, cycles collapsed, per-phase
//! time. This crate is the measurement substrate the rest of the workspace
//! threads through the solver stack:
//!
//! - [`Phase`] / [`Timers`]: **hierarchical phase timers** with a
//!   scoped-guard API ([`Timers::scope`]) or explicit
//!   [`start`](Timers::start)/[`stop`](Timers::stop) pairs for hot paths
//!   where a guard would fight the borrow checker. Nested phases attribute
//!   child time to the parent, so every phase reports both *total* and
//!   *self* time.
//! - [`Counter`] / [`Counters`]: a **registry of named monotonic counters**
//!   unifying the solver's `Stats`, the chain-search `SearchStats`, the
//!   graph census, and the constraint-generation counts behind one stable
//!   namespace (`work.total`, `search.edges-scanned`, …). Counters saturate
//!   instead of wrapping.
//! - [`Event`] / [`EventRing`]: a **bounded ring buffer** for rare events —
//!   SCC collapses, adjacency-list promotions past the degree-16 hybrid
//!   threshold, inconsistencies, work-limit hits. The ring never grows;
//!   old events are overwritten and accounted in `events_dropped`.
//! - [`RunReport`]: the machine-readable snapshot of all of the above,
//!   serialized to JSON (hand-rolled — the build has no serde) with a
//!   [round-tripping parser](RunReport::from_json), a human-readable
//!   [table renderer](RunReport::render_table), and
//!   [`merge`](RunReport::merge) for suite-level aggregation.
//!
//! # Zero-cost contract
//!
//! This crate is *always* functional; the zero-cost guarantee lives one
//! level up. `bane-core` compiles its probes only under its `obs` cargo
//! feature, and even then records only after `Solver::enable_obs` — see
//! `docs/OBSERVABILITY.md` for the full gating contract. Everything here is
//! allocation-free in steady state: timers and counters are fixed arrays,
//! the ring buffer is preallocated, and the timer stack reserves its
//! maximum practical depth up front.
//!
//! # Examples
//!
//! ```
//! use bane_obs::{Counter, Phase, Recorder};
//!
//! let rec = Recorder::new();
//! {
//!     let _solve = rec.scope(Phase::Resolve);
//!     {
//!         let _search = rec.scope(Phase::CycleDetect);
//!         // ... chain search ...
//!     }
//! }
//! rec.add(Counter::WorkTotal, 42);
//! let report = rec.report("example");
//! assert_eq!(report.counter("work.total"), Some(42));
//! let json = report.to_json();
//! assert_eq!(bane_obs::RunReport::from_json(&json).unwrap(), report);
//! ```

#![deny(missing_docs)]

pub mod counter;
pub mod event;
pub mod json;
pub mod phase;
pub mod report;

pub use counter::{Counter, Counters};
pub use event::{Event, EventRecord, EventRing, DEFAULT_EVENT_CAPACITY};
pub use phase::{Phase, PhaseGuard, PhaseSnapshot, Timers};
pub use report::{PhaseReport, RunReport};

use std::cell::RefCell;

/// One recorder bundling timers, counters, and the event ring.
///
/// All methods take `&self` (interior mutability) so probes can fire from
/// inside `&mut self` solver methods without borrow gymnastics, and so
/// scoped guards can nest.
///
/// The recorder as a whole is single-threaded (the timer stack and event
/// ring use `RefCell`), but the counter registry is `Sync`: worker threads
/// can bump counters directly through [`counters`](Recorder::counters)
/// while the owning thread keeps the timers. Worker-side *timings* come
/// back as raw nanoseconds via [`record_ns`](Recorder::record_ns).
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    timers: Timers,
    counters: Counters,
    events: RefCell<EventRing>,
}

impl Recorder {
    /// A recorder with the default event-ring capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder whose event ring holds at most `event_capacity` events.
    pub fn with_event_capacity(event_capacity: usize) -> Self {
        Recorder {
            timers: Timers::default(),
            counters: Counters::default(),
            events: RefCell::new(EventRing::new(event_capacity)),
        }
    }

    /// Starts `phase`; pair with [`stop`](Recorder::stop).
    #[inline]
    pub fn start(&self, phase: Phase) {
        self.timers.start(phase);
    }

    /// Stops `phase`, accumulating its elapsed time.
    #[inline]
    pub fn stop(&self, phase: Phase) {
        self.timers.stop(phase);
    }

    /// Starts `phase` and returns a guard that stops it on drop.
    pub fn scope(&self, phase: Phase) -> PhaseGuard<'_> {
        self.timers.scope(phase)
    }

    /// The timers, for direct inspection.
    pub fn timers(&self) -> &Timers {
        &self.timers
    }

    /// Records one externally measured call of `phase` lasting `ns`
    /// nanoseconds (see [`Timers::record_ns`]).
    #[inline]
    pub fn record_ns(&self, phase: Phase, ns: u64) {
        self.timers.record_ns(phase, ns);
    }

    /// The `Sync` counter registry, for sharing with worker threads.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Adds `n` to `counter` (saturating).
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        self.counters.add(counter, n);
    }

    /// Overwrites `counter` with `value`.
    #[inline]
    pub fn set(&self, counter: Counter, value: u64) {
        self.counters.set(counter, value);
    }

    /// Reads `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters.get(counter)
    }

    /// Records `event` in the ring buffer (overwriting the oldest event
    /// when full).
    #[inline]
    pub fn emit(&self, event: Event) {
        self.events.borrow_mut().push(event);
    }

    /// Number of events emitted so far (including dropped ones).
    pub fn events_emitted(&self) -> u64 {
        self.events.borrow().emitted()
    }

    /// Snapshots everything recorded so far into a [`RunReport`].
    pub fn report(&self, label: &str) -> RunReport {
        let events = self.events.borrow();
        RunReport {
            label: label.to_string(),
            phases: self.timers.snapshot(),
            counters: self.counters.nonzero(),
            events: events.iter().collect(),
            events_dropped: events.dropped(),
        }
    }

    /// Clears all timers, counters, and events.
    pub fn reset(&self) {
        self.timers.reset();
        self.counters.reset();
        self.events.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_end_to_end() {
        let rec = Recorder::new();
        {
            let _g = rec.scope(Phase::Resolve);
            rec.add(Counter::WorkTotal, 7);
            rec.emit(Event::CycleCollapsed { witness: 1, members: 3 });
        }
        rec.add(Counter::WorkTotal, 3);
        let report = rec.report("t");
        assert_eq!(report.counter("work.total"), Some(10));
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].phase, Phase::Resolve.name());
        assert_eq!(report.events.len(), 1);
        rec.reset();
        let empty = rec.report("t");
        assert!(empty.phases.is_empty());
        assert!(empty.events.is_empty());
    }
}
