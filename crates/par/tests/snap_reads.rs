//! The serving acceptance gate: a `QueryIndex` cold-loaded from disk,
//! shared across `bane-par`'s pool, answers every query kind byte-identically
//! to the live `LeastSolution` — on the paper-suite povray-2.2 stand-in, at
//! 1/2/4/8 reader threads, under every solution-set backend.
//!
//! This lives in `bane-par` (not `bane-snap`) because the claim under test
//! is about the *pool*: `&QueryIndex` crosses `Pool::broadcast`'s scoped
//! workers with no locks and no live-solver access, exactly the way the
//! serving layer is meant to be deployed (docs/SERVING.md).

use std::sync::atomic::{AtomicUsize, Ordering};

use bane_core::prelude::*;
use bane_par::{chunk_range, Pool};
use bane_points_to::andersen;
use bane_snap::{write_solver, LoadMode, QueryIndex, QueryScratch};
use bane_synth::suite::{suite_program, PAPER_SUITE};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const BACKENDS: [SolSetKind; 3] =
    [SolSetKind::SortedSpan, SolSetKind::Bitmap, SolSetKind::Hybrid];

/// Matches the CI bench scale: large enough for real collapse activity and
/// ~tens of thousands of variables, small enough for the test budget.
const SCALE: f64 = 0.2;

#[test]
fn povray_snapshot_serves_identically_at_every_thread_count() {
    let entry = PAPER_SUITE.iter().find(|e| e.name == "povray-2.2").unwrap();
    let program = suite_program(entry, SCALE);
    let dir = std::env::temp_dir().join("bane-par-snap-reads");
    std::fs::create_dir_all(&dir).unwrap();

    for kind in BACKENDS {
        let config = SolverConfig::if_online().with_solset(kind);
        let mut analysis = andersen::analyze(&program, config);
        let ls = analysis.solver.least_solution();
        let path = dir.join(format!("povray-{kind:?}.snap"));
        write_solver(&mut analysis.solver, &path, None).unwrap();
        drop(analysis); // the index must answer with no live solver at all

        // Cold load from the file for every thread count: the acceptance
        // criterion is about a *loaded* index, not a shared warm one.
        for &threads in &THREADS {
            let index = QueryIndex::load_with(&path, LoadMode::Auto, None).unwrap();
            let n = index.var_count();
            assert_eq!(n, ls.len());
            let mismatches = AtomicUsize::new(0);
            let (index, ls, mismatches) = (&index, &ls, &mismatches);
            let pool = Pool::new(threads);
            pool.broadcast(|w| {
                let (start, end) = chunk_range(n, threads, w);
                let mut scratch = QueryScratch::new();
                let mut reach = Vec::new();
                for i in start..end {
                    let v = Var::new(i);
                    let live = ls.get(v);
                    // points_to: byte-identical to the live least solution.
                    if index.points_to(v) != live {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                    // reachable_sources: the independent CSR route.
                    index.reachable_sources_with(v, &mut scratch, &mut reach);
                    if reach != live {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                    // alias: against a live sorted-span intersection, on a
                    // sheared sample of partners so every worker checks a
                    // different slice of the grid.
                    let partner = Var::new((i * 7919 + w) % n);
                    let live_alias =
                        live.iter().any(|t| ls.get(partner).binary_search(t).is_ok());
                    if index.alias(v, partner) != live_alias {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            assert_eq!(
                mismatches.load(Ordering::Relaxed),
                0,
                "{kind:?} at {threads} threads: snapshot answers diverged from live LS"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// Both load paths (mmap and owned) serve the same answers — the backing
/// choice is invisible to queries.
#[test]
fn load_modes_are_observationally_identical() {
    let entry = PAPER_SUITE.iter().find(|e| e.name == "povray-2.2").unwrap();
    let program = suite_program(entry, 0.05);
    let mut analysis = andersen::analyze(&program, SolverConfig::if_online());
    let dir = std::env::temp_dir().join("bane-par-snap-modes");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("povray-small.snap");
    write_solver(&mut analysis.solver, &path, None).unwrap();

    let owned = QueryIndex::load_with(&path, LoadMode::Owned, None).unwrap();
    let auto = QueryIndex::load_with(&path, LoadMode::Auto, None).unwrap();
    assert_eq!(owned.checksum(), auto.checksum());
    assert_eq!(owned.var_count(), auto.var_count());
    for i in 0..owned.var_count() {
        let v = Var::new(i);
        assert_eq!(owned.points_to(v), auto.points_to(v));
        assert_eq!(owned.preds(v), auto.preds(v));
    }
    std::fs::remove_file(&path).unwrap();
}
