//! The engine's central contract: every observable output is identical at
//! every thread count, and the parallel least solution is byte-identical to
//! the sequential pass.
//!
//! Two layers of evidence:
//!
//! - a property test over randomized synthetic constraint systems (chains,
//!   cycles, term structure, sources, sinks) comparing `FrontierSolver` runs
//!   at 1/2/4/8 threads field by field — stats (the paper's Work metric
//!   included), census, inconsistencies, finds, rounds, and the least
//!   solution down to the byte;
//! - a golden run on the paper-suite `povray-2.2` stand-in program through
//!   the real Andersen front end, additionally cross-checked *semantically*
//!   against the sequential `Solver` (the round schedule legitimately
//!   differs from FIFO, so order-dependent stats may differ, but resolved
//!   sets must not).

use bane_core::prelude::*;
use bane_par::{least_solution, FrontierSolver, ParLeast};
use bane_points_to::andersen;
use bane_synth::suite::{suite_program, PAPER_SUITE};
use bane_util::SplitMix64;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Emits a randomized constraint system through any engine's mirrored API.
struct SynthSystem {
    n_vars: usize,
    n_cons: usize,
    edges: Vec<(usize, usize)>,
    srcs: Vec<(usize, usize)>,
    snks: Vec<(usize, usize)>,
    pairs: Vec<(usize, usize, usize)>,
}

impl SynthSystem {
    fn new(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let n_vars = 80;
        let n_cons = 6;
        let mut edges = Vec::new();
        // Forward chains with a sprinkle of back edges: plenty of cycles.
        for i in 0..n_vars {
            for j in (i + 1)..n_vars {
                if rng.next_bool(0.04) {
                    edges.push((i, j));
                }
            }
        }
        for _ in 0..12 {
            let a = rng.next_below(n_vars as u64) as usize;
            let b = rng.next_below(n_vars as u64) as usize;
            edges.push((a, b));
        }
        let srcs =
            (0..10).map(|k| (k % n_cons, rng.next_below(n_vars as u64) as usize)).collect();
        let snks =
            (0..6).map(|k| (k % n_cons, rng.next_below(n_vars as u64) as usize)).collect();
        // Constructed terms meeting through a middle variable, exercising
        // variance decomposition (and the occasional constructor mismatch).
        let pairs = (0..8)
            .map(|_| {
                (
                    rng.next_below(n_vars as u64) as usize,
                    rng.next_below(n_vars as u64) as usize,
                    rng.next_below(n_vars as u64) as usize,
                )
            })
            .collect();
        SynthSystem { n_vars, n_cons, edges, srcs, snks, pairs }
    }

    fn build(&self, config: SolverConfig, threads: usize) -> FrontierSolver {
        let mut f = FrontierSolver::new(config, threads);
        let vs: Vec<Var> = (0..self.n_vars).map(|_| f.fresh_var()).collect();
        let cons: Vec<_> =
            (0..self.n_cons).map(|k| f.register_nullary(format!("c{k}"))).collect();
        let pair_con =
            f.register_con("pair", vec![Variance::Covariant, Variance::Contravariant]);
        for &(a, b) in &self.edges {
            f.add(vs[a], vs[b]);
        }
        for &(k, at) in &self.srcs {
            let t = f.term(cons[k], vec![]);
            f.add(t, vs[at]);
        }
        for &(k, at) in &self.snks {
            let t = f.term(cons[k], vec![]);
            f.add(vs[at], t);
        }
        for &(a, b, mid) in &self.pairs {
            let src = f.term(pair_con, vec![vs[a].into(), vs[b].into()]);
            let snk = f.term(pair_con, vec![vs[b].into(), vs[a].into()]);
            f.add(src, vs[mid]);
            f.add(vs[mid], snk);
        }
        f
    }

    fn build_sequential(&self, config: SolverConfig) -> Solver {
        // Same creation sequence through the sequential API.
        let mut s = Solver::new(config);
        let vs: Vec<Var> = (0..self.n_vars).map(|_| s.fresh_var()).collect();
        let cons: Vec<_> =
            (0..self.n_cons).map(|k| s.register_nullary(format!("c{k}"))).collect();
        let pair_con =
            s.register_con("pair", vec![Variance::Covariant, Variance::Contravariant]);
        for &(a, b) in &self.edges {
            s.add(vs[a], vs[b]);
        }
        for &(k, at) in &self.srcs {
            let t = s.term(cons[k], vec![]);
            s.add(t, vs[at]);
        }
        for &(k, at) in &self.snks {
            let t = s.term(cons[k], vec![]);
            s.add(vs[at], t);
        }
        for &(a, b, mid) in &self.pairs {
            let src = s.term(pair_con, vec![vs[a].into(), vs[b].into()]);
            let snk = s.term(pair_con, vec![vs[b].into(), vs[a].into()]);
            s.add(src, vs[mid]);
            s.add(vs[mid], snk);
        }
        s
    }
}

/// Everything a run exposes, gathered for whole-value comparison.
#[derive(Debug, PartialEq)]
struct Observed {
    stats: Stats,
    census: bane_core::graph::GraphCensus,
    errors: Vec<Inconsistency>,
    rounds: u64,
    finds: Vec<Var>,
    ls: LeastSolution,
}

fn observe(mut f: FrontierSolver) -> Observed {
    f.solve();
    let finds = (0..f.graph_len()).map(|i| f.find(Var::new(i))).collect();
    let ls = f.least_solution();
    Observed {
        stats: *f.stats(),
        census: f.census(),
        errors: f.inconsistencies().to_vec(),
        rounds: f.rounds(),
        finds,
        ls,
    }
}

#[test]
fn synthetic_systems_reproduce_at_every_thread_count() {
    let configs = [
        SolverConfig::if_online(),
        SolverConfig::sf_online(),
        SolverConfig::if_plain(),
        SolverConfig::sf_plain(),
    ];
    for config in configs {
        for seed in 0..5u64 {
            let sys = SynthSystem::new(seed);
            let baseline = observe(sys.build(config, THREADS[0]));
            for &threads in &THREADS[1..] {
                let run = observe(sys.build(config, threads));
                assert_eq!(
                    run, baseline,
                    "{config:?} seed {seed}: {threads}-thread run diverged from 1-thread"
                );
            }
        }
    }
}

#[test]
fn synthetic_systems_agree_semantically_with_sequential_solver() {
    for config in [SolverConfig::if_online(), SolverConfig::sf_online()] {
        for seed in 0..5u64 {
            let sys = SynthSystem::new(seed);
            let mut seq = sys.build_sequential(config);
            seq.solve();
            let n = seq.graph_len();
            let seq_ls = seq.least_solution();
            let mut seq_errors = seq.inconsistencies().to_vec();
            seq_errors.sort_by_key(error_key);

            let par = observe(sys.build(config, 4));
            let mut par_errors = par.errors.clone();
            par_errors.sort_by_key(error_key);
            assert_eq!(par_errors, seq_errors, "{config:?} seed {seed}: inconsistency sets");
            for i in 0..n {
                let v = Var::new(i);
                assert_eq!(
                    par.ls.get(v),
                    seq_ls.get(v),
                    "{config:?} seed {seed}: LS(v{i}) diverged from sequential"
                );
            }
        }
    }
}

/// A stable sort key for inconsistency multiset comparison (the engines may
/// discover the same errors in different orders).
fn error_key(e: &Inconsistency) -> (u8, u32, u32) {
    match *e {
        Inconsistency::ConstructorMismatch { lhs, rhs } => (0, lhs.raw(), rhs.raw()),
        Inconsistency::NonEmptyInZero { lhs } => (1, lhs.map_or(u32::MAX, |t| t.raw()), 0),
        Inconsistency::OneInTerm { rhs } => (2, rhs.raw(), 0),
    }
}

/// The paper-suite stand-in used by the goldens: `povray-2.2` scaled down to
/// test size, through the real Andersen C front end.
fn povray_solver() -> Solver {
    let entry = PAPER_SUITE
        .iter()
        .find(|e| e.name == "povray-2.2")
        .expect("povray-2.2 in the paper suite");
    let program = suite_program(entry, 0.04);
    let mut solver = Solver::new(SolverConfig::if_online());
    let (_locs, gen) = andersen::generate(&program, &mut solver);
    assert!(gen.constraints > 500, "stand-in should be non-trivial");
    solver
}

#[test]
fn parallel_least_solution_is_byte_identical_on_povray_standin() {
    let mut solver = povray_solver();
    solver.solve();
    let seq = solver.least_solution();
    let mut par = ParLeast::new();
    for &threads in &THREADS {
        par.run(&solver.least_parts(), threads, None);
        assert_eq!(
            par.solution(),
            seq,
            "povray stand-in: {threads}-thread least solution not byte-identical"
        );
        assert_eq!(least_solution(&solver, threads), seq);
    }
}

#[test]
fn frontier_engine_reproduces_and_agrees_on_povray_standin() {
    let mut seq = povray_solver();
    seq.solve();
    let n = seq.graph_len();
    let seq_ls = seq.least_solution();

    let baseline = observe(FrontierSolver::from_solver(povray_solver(), THREADS[0]));
    for &threads in &THREADS[1..] {
        let run = observe(FrontierSolver::from_solver(povray_solver(), threads));
        assert_eq!(
            run, baseline,
            "povray stand-in: {threads}-thread frontier run diverged from 1-thread"
        );
    }
    // The stand-in's inconsistencies (if any) must match the sequential
    // run's as a multiset; discovery order may differ across schedules.
    let mut seq_errors = seq.inconsistencies().to_vec();
    seq_errors.sort_by_key(error_key);
    let mut par_errors = baseline.errors.clone();
    par_errors.sort_by_key(error_key);
    assert_eq!(par_errors, seq_errors, "povray stand-in: inconsistency sets");
    for i in 0..n {
        let v = Var::new(i);
        assert_eq!(
            baseline.ls.get(v),
            seq_ls.get(v),
            "povray stand-in: frontier LS(v{i}) diverged from sequential"
        );
    }
}
