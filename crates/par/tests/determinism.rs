//! The engine's central contract: every observable output is identical at
//! every thread count *and every batch size `K`*, and the parallel least
//! solution is byte-identical to the sequential pass.
//!
//! Two layers of evidence:
//!
//! - a property test over randomized synthetic constraint systems (chains,
//!   cycles, term structure, sources, sinks) comparing `FrontierSolver` runs
//!   at every (threads, K) in {1, 2, 4, 8} × {1, 2, 8} field by field —
//!   stats (the paper's Work metric included), census, inconsistencies,
//!   finds, rounds, and the least solution down to the byte — including
//!   `CycleElim::Periodic` configurations, whose offline sweeps run at
//!   round boundaries inside batches;
//! - a golden run on the paper-suite `povray-2.2` stand-in program through
//!   the real Andersen front end, additionally cross-checked *semantically*
//!   against the sequential `Solver` (the round schedule legitimately
//!   differs from FIFO, so order-dependent stats may differ, but resolved
//!   sets must not).
//!
//! Systems are recorded once into a [`Problem`] and replayed into every
//! engine via `Engine::from_problem`, so all runs see the numerically
//! identical constraint system by construction.

use bane_core::prelude::*;
use bane_par::{least_solution, BatchRounds, FrontierSolver, ParLeast};
use bane_points_to::andersen;
use bane_synth::suite::{suite_program, PAPER_SUITE};
use bane_util::SplitMix64;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const BATCH_ROUNDS: [usize; 3] = [1, 2, 8];

/// Emits a randomized constraint system through any [`ConstraintBuilder`].
struct SynthSystem {
    n_vars: usize,
    n_cons: usize,
    edges: Vec<(usize, usize)>,
    srcs: Vec<(usize, usize)>,
    snks: Vec<(usize, usize)>,
    pairs: Vec<(usize, usize, usize)>,
}

impl SynthSystem {
    fn new(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let n_vars = 80;
        let n_cons = 6;
        let mut edges = Vec::new();
        // Forward chains with a sprinkle of back edges: plenty of cycles.
        for i in 0..n_vars {
            for j in (i + 1)..n_vars {
                if rng.next_bool(0.04) {
                    edges.push((i, j));
                }
            }
        }
        for _ in 0..12 {
            let a = rng.next_below(n_vars as u64) as usize;
            let b = rng.next_below(n_vars as u64) as usize;
            edges.push((a, b));
        }
        let srcs =
            (0..10).map(|k| (k % n_cons, rng.next_below(n_vars as u64) as usize)).collect();
        let snks =
            (0..6).map(|k| (k % n_cons, rng.next_below(n_vars as u64) as usize)).collect();
        // Constructed terms meeting through a middle variable, exercising
        // variance decomposition (and the occasional constructor mismatch).
        let pairs = (0..8)
            .map(|_| {
                (
                    rng.next_below(n_vars as u64) as usize,
                    rng.next_below(n_vars as u64) as usize,
                    rng.next_below(n_vars as u64) as usize,
                )
            })
            .collect();
        SynthSystem { n_vars, n_cons, edges, srcs, snks, pairs }
    }

    /// The one emission sequence, generic over the builder: every engine
    /// sees identical identifiers because `Problem` mirrors the builtin
    /// prefix registration.
    fn emit<B: ConstraintBuilder>(&self, f: &mut B) {
        let vs: Vec<Var> = (0..self.n_vars).map(|_| f.fresh_var()).collect();
        let cons: Vec<_> =
            (0..self.n_cons).map(|k| f.register_nullary(format!("c{k}"))).collect();
        let pair_con =
            f.register_con("pair", vec![Variance::Covariant, Variance::Contravariant]);
        for &(a, b) in &self.edges {
            f.add(vs[a], vs[b]);
        }
        for &(k, at) in &self.srcs {
            let t = f.term(cons[k], vec![]);
            f.add(t, vs[at]);
        }
        for &(k, at) in &self.snks {
            let t = f.term(cons[k], vec![]);
            f.add(vs[at], t);
        }
        for &(a, b, mid) in &self.pairs {
            let src = f.term(pair_con, vec![vs[a].into(), vs[b].into()]);
            let snk = f.term(pair_con, vec![vs[b].into(), vs[a].into()]);
            f.add(src, vs[mid]);
            f.add(vs[mid], snk);
        }
    }

    fn problem(&self, config: SolverConfig) -> Problem {
        let mut p = Problem::new(config);
        self.emit(&mut p);
        p
    }

    fn build(&self, config: SolverConfig, threads: usize, batch_rounds: usize) -> FrontierSolver {
        let mut f = FrontierSolver::from_problem(self.problem(config));
        f.set_threads(threads);
        f.set_batch_rounds(batch_rounds);
        f
    }

    fn build_sequential(&self, config: SolverConfig) -> Solver {
        Solver::from_problem(self.problem(config))
    }
}

/// Everything a run exposes, gathered for whole-value comparison. `rounds`
/// is included deliberately: the round sequence itself must be invariant
/// under both thread count and batch size (batches only group rounds).
#[derive(Debug, PartialEq)]
struct Observed {
    stats: Stats,
    census: bane_core::graph::GraphCensus,
    errors: Vec<Inconsistency>,
    rounds: u64,
    finds: Vec<Var>,
    ls: LeastSolution,
}

fn observe(mut f: FrontierSolver) -> Observed {
    Engine::solve(&mut f);
    let finds = (0..f.graph_len()).map(|i| Engine::find(&mut f, Var::new(i))).collect();
    let ls = Engine::least_solution(&mut f);
    Observed {
        stats: *Engine::stats(&f),
        census: Engine::census(&f),
        errors: Engine::inconsistencies(&f).to_vec(),
        rounds: f.rounds(),
        finds,
        ls,
    }
}

fn property_configs() -> [SolverConfig; 6] {
    [
        SolverConfig::if_online(),
        SolverConfig::sf_online(),
        SolverConfig::if_plain(),
        SolverConfig::sf_plain(),
        SolverConfig {
            cycle_elim: CycleElim::Periodic { interval: 16 },
            ..SolverConfig::if_plain()
        },
        SolverConfig {
            cycle_elim: CycleElim::Periodic { interval: 64 },
            ..SolverConfig::if_online()
        },
    ]
}

#[test]
fn synthetic_systems_reproduce_at_every_thread_count_and_batch_size() {
    for config in property_configs() {
        for seed in 0..5u64 {
            let sys = SynthSystem::new(seed);
            let baseline = observe(sys.build(config, THREADS[0], BATCH_ROUNDS[0]));
            for &threads in &THREADS {
                for &k in &BATCH_ROUNDS {
                    if (threads, k) == (THREADS[0], BATCH_ROUNDS[0]) {
                        continue;
                    }
                    let run = observe(sys.build(config, threads, k));
                    assert_eq!(
                        run, baseline,
                        "{config:?} seed {seed}: ({threads} threads, K={k}) diverged \
                         from (1 thread, K=1)"
                    );
                }
                // Adaptive K sits on the same baseline: Auto only regroups
                // rounds into batches, never changes what a round computes.
                let mut f = FrontierSolver::from_problem(sys.problem(config));
                f.set_threads(threads);
                f.set_batch_rounds(BatchRounds::Auto);
                let run = observe(f);
                assert_eq!(
                    run, baseline,
                    "{config:?} seed {seed}: ({threads} threads, K=Auto) diverged \
                     from (1 thread, K=1)"
                );
            }
        }
    }
}

#[test]
fn synthetic_systems_agree_semantically_with_sequential_solver() {
    let periodic = SolverConfig {
        cycle_elim: CycleElim::Periodic { interval: 16 },
        ..SolverConfig::if_plain()
    };
    for config in [SolverConfig::if_online(), SolverConfig::sf_online(), periodic] {
        for seed in 0..5u64 {
            let sys = SynthSystem::new(seed);
            let mut seq = sys.build_sequential(config);
            seq.solve();
            let n = seq.graph_len();
            let seq_ls = seq.least_solution();
            // Compare the *sets* of inconsistencies: how many times the
            // same mismatch is re-derived is a schedule artifact (e.g.
            // periodic sweeps fire mid-queue sequentially but at round
            // boundaries in the frontier engine).
            let mut seq_errors = seq.inconsistencies().to_vec();
            seq_errors.sort_by_key(error_key);
            seq_errors.dedup();

            let par = observe(sys.build(config, 4, 8));
            let mut par_errors = par.errors.clone();
            par_errors.sort_by_key(error_key);
            par_errors.dedup();
            assert_eq!(par_errors, seq_errors, "{config:?} seed {seed}: inconsistency sets");
            for i in 0..n {
                let v = Var::new(i);
                assert_eq!(
                    par.ls.get(v),
                    seq_ls.get(v),
                    "{config:?} seed {seed}: LS(v{i}) diverged from sequential"
                );
            }
        }
    }
}

/// Staleness validation inside one batch: a collapse committed in an early
/// round must invalidate frozen no-cycle verdicts proposed in a later round
/// of the *same* batch.
///
/// Round 1's frontier carries a direct 2-cycle (`x ⊆ y`, `y ⊆ x`): the
/// second commit's frozen no-cycle verdict goes stale against the first
/// insert, reruns live, and collapses. Rounds 2–3 then derive a second
/// 2-cycle through constructor decomposition (`pair(u) ⊆ mid ⊆ pair(w)` ⇒
/// `u ⊆ w`, and symmetrically `w ⊆ u`), whose halves meet in round 3 —
/// after the round-1 collapse already advanced the forwarding epoch within
/// the batch. With `K = 8` all of this runs inside a single broadcast
/// (`batches() == 1`), and every observable must match the unbatched run.
#[test]
fn collapse_in_early_batch_round_invalidates_later_frozen_verdicts() {
    fn build(threads: usize, k: usize) -> FrontierSolver {
        let mut p = Problem::new(SolverConfig::if_online());
        let pair = p.register_con("pair", vec![Variance::Covariant]);
        let (x, y) = (p.fresh_var(), p.fresh_var());
        let (u, w) = (p.fresh_var(), p.fresh_var());
        let (mid, mid2) = (p.fresh_var(), p.fresh_var());
        // Direct 2-cycle: collapses during round 1's commit.
        p.add(x, y);
        p.add(y, x);
        // Derived 2-cycle: `u ⊆ w` and `w ⊆ u` surface in round 3 via
        // source/sink meeting (round 1) and decomposition (round 2).
        let src_u = p.term(pair, vec![u.into()]);
        let snk_w = p.term(pair, vec![w.into()]);
        let src_w = p.term(pair, vec![w.into()]);
        let snk_u = p.term(pair, vec![u.into()]);
        p.add(src_u, mid);
        p.add(mid, snk_w);
        p.add(src_w, mid2);
        p.add(mid2, snk_u);
        let mut f = FrontierSolver::from_problem(p);
        f.set_threads(threads);
        f.set_batch_rounds(k);
        f
    }

    let mut baseline: Option<Observed> = None;
    for &threads in &THREADS {
        for &k in &BATCH_ROUNDS {
            let mut f = build(threads, k);
            Engine::solve(&mut f);
            let label = format!("threads {threads} K {k}");
            assert_eq!(
                Engine::stats(&f).cycles_collapsed,
                2,
                "{label}: both the direct and the derived cycle must collapse"
            );
            if k == 8 {
                assert_eq!(f.batches(), 1, "{label}: one broadcast covers the whole run");
            }
            let run = observe(build(threads, k));
            match &baseline {
                None => baseline = Some(run),
                Some(b) => assert_eq!(&run, b, "{label}: diverged from (1 thread, K=1)"),
            }
        }
    }
}

/// A stable sort key for inconsistency multiset comparison (the engines may
/// discover the same errors in different orders).
fn error_key(e: &Inconsistency) -> (u8, u32, u32) {
    match *e {
        Inconsistency::ConstructorMismatch { lhs, rhs } => (0, lhs.raw(), rhs.raw()),
        Inconsistency::NonEmptyInZero { lhs } => (1, lhs.map_or(u32::MAX, |t| t.raw()), 0),
        Inconsistency::OneInTerm { rhs } => (2, rhs.raw(), 0),
    }
}

/// The paper-suite stand-in used by the goldens: `povray-2.2` scaled down to
/// test size, through the real Andersen C front end.
fn povray_solver() -> Solver {
    let entry = PAPER_SUITE
        .iter()
        .find(|e| e.name == "povray-2.2")
        .expect("povray-2.2 in the paper suite");
    let program = suite_program(entry, 0.04);
    let mut solver = Solver::new(SolverConfig::if_online());
    let (_locs, gen) = andersen::generate(&program, &mut solver);
    assert!(gen.constraints > 500, "stand-in should be non-trivial");
    solver
}

/// The CSR snapshot the least-solution kernel traverses must agree
/// entry-for-entry with a direct canonicalizing walk of the adjacency
/// lists on the paper-suite stand-in (a real front-end workload with
/// collapses, stale entries, and promoted adjacency lists).
#[test]
fn csr_snapshot_matches_adjacency_on_povray_standin() {
    use bane_core::least::CsrSnapshot;
    let mut solver = povray_solver();
    solver.solve();
    let parts = solver.least_parts();
    let (mut rep, mut layout) = (Vec::new(), Vec::new());
    parts.rep_map_into(&mut rep);
    parts.layout_order_into(&rep, &mut layout);
    let mut csr = CsrSnapshot::new();
    csr.build(&parts, &layout);
    assert!(csr.src_entries() > 0, "stand-in has sources");
    let mut pred_total = 0;
    for &v in &layout {
        let node = parts.graph.node(v);
        let mut srcs: Vec<TermId> = node.pred_srcs().to_vec();
        srcs.sort_unstable();
        srcs.dedup();
        assert_eq!(csr.srcs(v), srcs.as_slice(), "src row of {v:?}");
        let mut preds: Vec<Var> = node
            .pred_vars()
            .iter()
            .map(|&raw| parts.fwd.find_const(raw))
            .filter(|&u| u != v)
            .collect();
        preds.sort_unstable();
        preds.dedup();
        assert_eq!(csr.preds(v), preds.as_slice(), "pred row of {v:?}");
        pred_total += preds.len();
    }
    assert_eq!(csr.pred_entries(), pred_total);
    assert!(pred_total > 0, "stand-in has canonical pred edges");
}

#[test]
fn parallel_least_solution_is_byte_identical_on_povray_standin() {
    let mut solver = povray_solver();
    solver.solve();
    let seq = solver.least_solution();
    let mut par = ParLeast::new();
    for &threads in &THREADS {
        par.run(&solver.least_parts(), threads, None);
        assert_eq!(
            par.solution(),
            seq,
            "povray stand-in: {threads}-thread least solution not byte-identical"
        );
        assert_eq!(least_solution(&solver, threads), seq);
    }
}

#[test]
fn frontier_engine_reproduces_and_agrees_on_povray_standin() {
    let mut seq = povray_solver();
    seq.solve();
    let n = seq.graph_len();
    let seq_ls = seq.least_solution();

    let frontier = |threads: usize, k: usize| {
        let mut f = FrontierSolver::from_solver(povray_solver(), threads);
        f.set_batch_rounds(k);
        f
    };
    let baseline = observe(frontier(THREADS[0], BATCH_ROUNDS[0]));
    for &threads in &THREADS[1..] {
        for &k in &BATCH_ROUNDS {
            let run = observe(frontier(threads, k));
            assert_eq!(
                run, baseline,
                "povray stand-in: ({threads} threads, K={k}) frontier run diverged \
                 from (1 thread, K=1)"
            );
        }
    }
    // The stand-in's inconsistencies (if any) must match the sequential
    // run's as a multiset; discovery order may differ across schedules.
    let mut seq_errors = seq.inconsistencies().to_vec();
    seq_errors.sort_by_key(error_key);
    let mut par_errors = baseline.errors.clone();
    par_errors.sort_by_key(error_key);
    assert_eq!(par_errors, seq_errors, "povray stand-in: inconsistency sets");
    for i in 0..n {
        let v = Var::new(i);
        assert_eq!(
            baseline.ls.get(v),
            seq_ls.get(v),
            "povray stand-in: frontier LS(v{i}) diverged from sequential"
        );
    }
}

/// Fewer broadcasts at higher `K` on the stand-in — the batching win the
/// BENCH_4 snapshot records as `par.commit.broadcasts`.
#[test]
fn batching_reduces_broadcasts_on_povray_standin() {
    let run = |k: usize| {
        let mut f = FrontierSolver::from_solver(povray_solver(), 2);
        f.set_batch_rounds(k);
        Engine::solve(&mut f);
        (f.batches(), f.rounds())
    };
    let (b1, r1) = run(1);
    let (b8, r8) = run(8);
    assert_eq!(r1, r8, "round sequence is K-invariant");
    assert_eq!(b1, r1, "K = 1: one broadcast per round");
    assert!(b8 < b1, "K = 8 must use strictly fewer broadcasts ({b8} vs {b1})");
}
