//! SCC-level-parallel least-solution evaluation.
//!
//! The sequential pass in `bane-core` evaluates equation (1) by walking the
//! canonical variables in increasing order, each set the union of its own
//! sources and its canonical predecessors' already-computed sets. The
//! inductive-form invariant — predecessor edges always decrease the
//! variable order — means the canonical predecessor graph is a DAG, so its
//! **condensation levels** (`level(v) = 1 + max level of v's predecessors`)
//! are independent batches: every variable on a level reads only sets
//! committed on strictly lower levels. [`ParLeast`] evaluates each level's
//! variables in parallel and commits the results in a fixed order, producing
//! a [`LeastSolution`] **byte-identical** to the sequential pass at every
//! thread count (`PartialEq` on `LeastSolution` compares the raw buffers, so
//! the tests pin exactly that).
//!
//! # Why bytes match
//!
//! Each variable's set is canonical — sorted and deduplicated — so its
//! content is independent of the merge structure that produced it. The only
//! layout freedom is *arena order*, and the final relayout step writes sets
//! in the sequential pass's exact commit order (creation order for standard
//! form, increasing variable order for inductive form), including standard
//! form's empty `(k, k)` spans. Identical contents in identical order is
//! identical bytes. The same argument covers the solution-set backends and
//! difference propagation below: they change how a set is *computed*, never
//! what it contains, and the relayout order is untouched.
//!
//! # The CSR read path
//!
//! Before any evaluation, the run freezes the solved graph into a
//! [`CsrSnapshot`] — canonical, self-free, sorted predecessor rows and
//! sorted source rows, laid out in evaluation order. The snapshot is the
//! *same type the sequential pass traverses*, built once on the calling
//! thread: workers never read the live graph or chase a forwarding
//! pointer, they stream flat arrays. This is also what makes the scan
//! trivially safe to share read-only across threads.
//!
//! # Solution-set backends and difference propagation
//!
//! [`ParLeast::run_with`] extends the pass along the two axes of
//! `bane-core`'s [`solset`](bane_core::solset) module (DESIGN.md §4f):
//!
//! - **backend** ([`SolSetKind`]): wide unions (many or large input runs)
//!   can be built in a worker-local sparse bitmap over a hash-consed block
//!   arena instead of iterated pairwise merging — blocks interned while
//!   scanning one level are shared across that level's variables, which is
//!   exactly where near-identical sets cluster. Each worker owns its arena
//!   (inside its `Mutex`ed scratch), so the path needs no cross-thread
//!   synchronization beyond the existing level barriers.
//! - **difference propagation** (`diff`): the evaluator retains the stable
//!   arena, the previous run's rows, and the previous representative map.
//!   A repeated run feeds each still-canonical variable only its new
//!   sources, its new predecessor edges' full sets, and its old
//!   predecessors' *deltas* (fresh elements committed this run), falling
//!   back to a full merge for variables the previous run did not cover.
//!   Monotone growth makes the retained stable sets valid lower bounds, so
//!   the result is byte-identical to a cold run either way.
//!
//! # Scheduling
//!
//! One [`Pool::broadcast`] spans the whole pass; workers meet at a
//! [`Barrier`] twice per level (end of scan, end of commit). Worker results
//! travel through per-worker [`Mutex`] slots — uncontended by construction:
//! each worker locks only its own slot during the scan, and worker 0 drains
//! them during the commit while everyone else waits at the barrier. With
//! `threads == 1` the pass runs inline with no locks, no barriers, and —
//! once warm — no allocations (pinned by `bane-core`'s allocation test).

use bane_core::least::{merge_sorted_dedup, CsrSnapshot, LeastParts, LeastSolution};
use bane_core::solset::{SolSetKind, HYBRID_PROMOTE};
use bane_core::solver::{Form, Solver};
use bane_core::{TermId, Var};
use bane_obs::{Counter, Phase, Recorder};
use bane_util::idx::Idx;
use bane_util::solset::{BlockArena, SparseBitmap};
use std::sync::{Barrier, Mutex, RwLock};

use crate::pool::{chunk_range, Pool};

/// Converts a `TermId` to its bitmap bit.
fn bit(t: TermId) -> u32 {
    t.index() as u32
}

/// Converts a bitmap bit back to a `TermId`.
fn term(b: u32) -> TermId {
    TermId::new(b as usize)
}

/// `out = a \ b` for sorted distinct slices (cleared first).
fn diff_sorted(a: &[TermId], b: &[TermId], out: &mut Vec<TermId>) {
    out.clear();
    let mut j = 0usize;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
}

/// How one scanned variable's `out` segment is to be committed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ScanKind {
    /// The segment is the variable's complete set.
    Full,
    /// The segment is only the fresh elements (delta) against the retained
    /// stable set.
    Incr,
}

/// The shared evaluation state: the arena sets are committed into, plus the
/// span of every canonical variable already evaluated.
///
/// Under difference propagation the arena persists across runs — unchanged
/// variables keep their old spans — and each run additionally accumulates
/// per-variable *delta* spans that same-run successors merge instead of the
/// full sets.
#[derive(Clone, Debug, Default)]
struct WorkBufs {
    arena: Vec<TermId>,
    /// Indexed by raw variable index; `(0, 0)` until the variable's level
    /// commits (and forever, for collapsed variables and empty sets).
    spans: Vec<(u32, u32)>,
    /// This run's fresh elements per variable (sorted, distinct).
    delta_arena: Vec<TermId>,
    /// Indexed by raw variable index, into `delta_arena`.
    delta_spans: Vec<(u32, u32)>,
    /// Variables whose whole set is this run's delta (full merges): their
    /// successors read `spans` instead of `delta_spans`.
    delta_full: Vec<bool>,
    /// Commit-side merge buffer (old stable ∪ delta → new stable).
    merge_scratch: Vec<TermId>,
    /// Pass accounting, aggregated at commit time (`ls.delta.*` counters).
    stat_full: u64,
    stat_incr: u64,
    stat_in: u64,
    stat_fresh: u64,
}

/// Union-building scratch: the pairwise ping-pong buffers plus the
/// worker-local bitmap path (its block arena is cleared per level, so
/// blocks interned for one variable are shared by the level's others).
#[derive(Clone, Debug, Default)]
struct MergeScratch {
    acc: Vec<TermId>,
    buf_b: Vec<TermId>,
    bounds_a: Vec<(u32, u32)>,
    bounds_b: Vec<(u32, u32)>,
    map: SparseBitmap,
    map_arena: BlockArena,
}

/// One worker's private scratch: scan output plus merge buffers.
///
/// Everything is reused across levels and across runs, so a warmed
/// single-threaded pass allocates nothing.
#[derive(Clone, Debug, Default)]
struct WorkerState {
    /// Concatenated result segments of this worker's chunk, in chunk order.
    out: Vec<TermId>,
    /// Per-chunk-item range into `out` (empty when the segment is empty).
    bounds: Vec<(u32, u32)>,
    /// Per-chunk-item commit mode.
    kinds: Vec<ScanKind>,
    /// Full-set input runs (spans into the stable arena).
    runs: Vec<(u32, u32)>,
    /// Incremental input runs: `(start, end, is_delta)` — spans into the
    /// delta arena when `is_delta`, the stable arena otherwise.
    in_runs: Vec<(u32, u32, bool)>,
    /// New sources this run (`srcs \ prev_srcs`).
    src_delta: Vec<TermId>,
    /// The merged incremental contribution before subtracting the stable
    /// set.
    dset: Vec<TermId>,
    /// Elements fed into this chunk's merges (drained at commit).
    elems_scanned: u64,
    merge: MergeScratch,
}

/// Unions `total` sorted, distinct input runs into `out` (appended).
///
/// `use_bitmap` routes wide unions through the worker-local sparse bitmap —
/// same bytes, different engine: blocks are OR'd word-wise and interned, so
/// repeated payloads across a level's variables are built once.
fn union_runs<'a>(
    total: usize,
    input: impl Fn(usize) -> &'a [TermId],
    use_bitmap: bool,
    m: &mut MergeScratch,
    out: &mut Vec<TermId>,
) {
    match total {
        0 => {}
        1 => out.extend_from_slice(input(0)),
        2 if !use_bitmap => merge_sorted_dedup(input(0), input(1), out),
        _ if use_bitmap => {
            m.map.clear();
            for i in 0..total {
                m.map.insert_sorted(&mut m.map_arena, input(i).iter().map(|&t| bit(t)), None);
            }
            m.map.for_each(&m.map_arena, |b| out.push(term(b)));
        }
        _ => {
            // Iterated pairwise merging, same shape (and same shared
            // primitive) as the sequential pass.
            m.acc.clear();
            m.bounds_a.clear();
            let mut i = 0;
            while i < total {
                let run_start = m.acc.len() as u32;
                if i + 1 < total {
                    merge_sorted_dedup(input(i), input(i + 1), &mut m.acc);
                    i += 2;
                } else {
                    m.acc.extend_from_slice(input(i));
                    i += 1;
                }
                m.bounds_a.push((run_start, m.acc.len() as u32));
            }
            while m.bounds_a.len() > 1 {
                m.buf_b.clear();
                m.bounds_b.clear();
                let mut i = 0;
                while i < m.bounds_a.len() {
                    let run_start = m.buf_b.len() as u32;
                    if i + 1 < m.bounds_a.len() {
                        let (s1, e1) = m.bounds_a[i];
                        let (s2, e2) = m.bounds_a[i + 1];
                        merge_sorted_dedup(
                            &m.acc[s1 as usize..e1 as usize],
                            &m.acc[s2 as usize..e2 as usize],
                            &mut m.buf_b,
                        );
                        i += 2;
                    } else {
                        let (s, e) = m.bounds_a[i];
                        m.buf_b.extend_from_slice(&m.acc[s as usize..e as usize]);
                        i += 1;
                    }
                    m.bounds_b.push((run_start, m.buf_b.len() as u32));
                }
                std::mem::swap(&mut m.acc, &mut m.buf_b);
                std::mem::swap(&mut m.bounds_a, &mut m.bounds_b);
            }
            out.extend_from_slice(&m.acc);
        }
    }
}

/// Whether a union of `input_len` total elements should run on the bitmap
/// path under `kind`.
fn wants_bitmap(kind: SolSetKind, input_len: usize) -> bool {
    match kind {
        SolSetKind::SortedSpan => false,
        SolSetKind::Bitmap => true,
        SolSetKind::Hybrid => input_len > HYBRID_PROMOTE,
    }
}

/// A reusable SCC-level-parallel least-solution evaluator.
///
/// Feed it [`LeastParts`] (borrowed from a solved [`Solver`] or assembled by
/// an engine that owns the parts) via [`run`](ParLeast::run) — or
/// [`run_with`](ParLeast::run_with) to select a solution-set backend and
/// difference propagation — then read the result with
/// [`solution`](ParLeast::solution). The output is byte-identical to
/// [`Solver::least_solution`] at every thread count, backend, and diff
/// setting.
///
/// # Examples
///
/// ```
/// use bane_core::solver::{Solver, SolverConfig};
/// use bane_par::ParLeast;
///
/// let mut s = Solver::new(SolverConfig::if_online());
/// let c = s.register_nullary("c");
/// let src = s.term(c, vec![]);
/// let (x, y) = (s.fresh_var(), s.fresh_var());
/// s.add(src, x);
/// s.add(x, y);
/// s.solve();
///
/// let mut par = ParLeast::new();
/// par.run(&s.least_parts(), 4, None);
/// let ls = par.solution();
/// assert_eq!(ls, s.least_solution()); // byte-identical
/// assert_eq!(ls.get(s.find(y)), &[src]);
/// ```
#[derive(Debug, Default)]
pub struct ParLeast {
    rep: Vec<Var>,
    layout: Vec<Var>,
    levels: Vec<u32>,
    /// Per-level counters, reused as bucket-fill cursors.
    level_counts: Vec<u32>,
    /// Per-level `(start, end)` into `level_order`.
    level_ranges: Vec<(u32, u32)>,
    /// `layout` stably bucketed by level: within a level, variables keep
    /// their layout order, so concatenating worker chunks in worker order
    /// reproduces it exactly.
    level_order: Vec<Var>,
    /// The frozen, canonicalized CSR view every scan reads. Built once per
    /// run on the calling thread; workers never touch the graph or the
    /// forwarding pointers after that.
    csr: CsrSnapshot,
    work: WorkBufs,
    workers: Vec<Mutex<WorkerState>>,
    final_arena: Vec<TermId>,
    final_spans: Vec<(u32, u32)>,
    /// The previous run's rows, representative map, and validity — the
    /// difference-propagation baseline (see the module docs).
    prev_csr: CsrSnapshot,
    prev_rep: Vec<Var>,
    prev_valid: bool,
    /// Whether a variable may be evaluated incrementally this run (it was
    /// canonical — hence evaluated — in the previous run).
    incr_ok: Vec<bool>,
    /// Revalidation dirty flags, indexed by raw variable index.
    dirty: Vec<bool>,
    /// The dirty subset of `level_order`, same bucketing.
    dirty_order: Vec<Var>,
    /// Per-level `(start, end)` into `dirty_order`.
    dirty_ranges: Vec<(u32, u32)>,
}

/// What a [`ParLeast::run_revalidate`] pass actually did: how much of the
/// retained least solution survived the change and how localized the
/// recomputation was. `bane-serve` feeds these figures into the
/// `serve.dirty.*` / `serve.reuse.hit` counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RevalidateOutcome {
    /// Condensation levels in the current schedule.
    pub total_levels: usize,
    /// Levels containing at least one dirty (re-evaluated) variable.
    pub dirty_levels: usize,
    /// Canonical variables whose set was recomputed.
    pub dirty_vars: usize,
    /// Canonical variables whose retained span was reused verbatim.
    pub reused_vars: usize,
    /// Whether a fast-apply session abandoned in-place repair and replayed
    /// the canonical sequence instead. Always `false` from
    /// [`ParLeast::run_revalidate`] itself — `bane-serve` sets it when its
    /// two-tier apply falls back (see `docs/INCREMENTAL.md`).
    pub fell_back: bool,
}

impl ParLeast {
    /// A fresh evaluator with no buffers warmed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates the least solution of `parts` on `threads` workers
    /// (clamped to at least 1), reusing all internal buffers.
    ///
    /// Equivalent to [`run_with`](ParLeast::run_with) under the default
    /// sorted-span backend with difference propagation off — the legacy
    /// reference path.
    ///
    /// With a recorder, the whole pass is timed under
    /// [`Phase::ParLeast`] and the `ls.*` counters are set to match the
    /// sequential pass's accounting.
    pub fn run(&mut self, parts: &LeastParts<'_>, threads: usize, rec: Option<&Recorder>) {
        self.run_with(parts, threads, SolSetKind::SortedSpan, false, rec);
    }

    /// [`run`](ParLeast::run) with an explicit solution-set backend and
    /// difference propagation.
    ///
    /// `kind` selects the union engine for wide merges (see
    /// [`SolSetKind`]); `diff` enables cross-run difference propagation —
    /// the first run (or a run after `diff == false`) evaluates everything,
    /// subsequent `diff` runs over a *grown* version of the same system
    /// re-merge only deltas. Output bytes are identical in every
    /// combination.
    pub fn run_with(
        &mut self,
        parts: &LeastParts<'_>,
        threads: usize,
        kind: SolSetKind,
        diff: bool,
        rec: Option<&Recorder>,
    ) {
        let t0 = rec.map(|_| std::time::Instant::now());
        let threads = threads.max(1);
        let parts = *parts;
        self.build_schedule(&parts, rec);

        while self.workers.len() < threads {
            self.workers.push(Mutex::new(WorkerState::default()));
        }

        let n = self.rep.len();
        let diff_active = diff && self.prev_valid;
        self.incr_ok.clear();
        if diff_active {
            // Keep the stable arena and spans: unchanged variables stay on
            // their old spans, changed ones get fresh appends. A variable
            // may go incremental iff it was canonical (hence evaluated) in
            // the baseline run. Canonicality only decreases, so a stale
            // `true` for a since-collapsed variable is harmless — it left
            // the layout.
            self.incr_ok.resize(n, false);
            for i in 0..n.min(self.prev_rep.len()) {
                if self.prev_rep[i] == Var::new(i) {
                    self.incr_ok[i] = true;
                }
            }
            self.work.spans.resize(n, (0, 0));
        } else {
            self.work.arena.clear();
            self.work.spans.clear();
            self.work.spans.resize(n, (0, 0));
        }
        self.work.delta_arena.clear();
        self.work.delta_spans.clear();
        self.work.delta_spans.resize(n, (0, 0));
        self.work.delta_full.clear();
        self.work.delta_full.resize(n, false);
        self.work.stat_full = 0;
        self.work.stat_incr = 0;
        self.work.stat_in = 0;
        self.work.stat_fresh = 0;

        if threads == 1 {
            // Inline fast path: no locks, no barriers, no allocation once
            // the buffers are warm.
            let prev = if diff_active { Some(&self.prev_csr) } else { None };
            let st = self.workers[0].get_mut().expect("worker mutex poisoned");
            for &(ls, le) in &self.level_ranges {
                let level = &self.level_order[ls as usize..le as usize];
                scan_chunk(parts.form, kind, &self.csr, prev, &self.incr_ok, &self.work, level, st);
                if diff_active {
                    commit_chunk_diff(&mut self.work, level, st);
                } else {
                    commit_chunk(&mut self.work, level, st);
                }
            }
        } else {
            let work = RwLock::new(std::mem::take(&mut self.work));
            let barrier = Barrier::new(threads);
            let level_ranges = &self.level_ranges;
            let level_order = &self.level_order;
            let workers = &self.workers;
            let csr = &self.csr;
            let prev = if diff_active { Some(&self.prev_csr) } else { None };
            let incr_ok = &self.incr_ok;
            let form = parts.form;
            Pool::new(threads).broadcast(|w| {
                for &(ls, le) in level_ranges {
                    let level = &level_order[ls as usize..le as usize];
                    {
                        // Scan: every worker reads the frozen lower-level
                        // spans and writes only its own slot.
                        let frozen = work.read().expect("work lock poisoned");
                        let mut st = workers[w].lock().expect("worker mutex poisoned");
                        let (cs, ce) = chunk_range(level.len(), threads, w);
                        scan_chunk(form, kind, csr, prev, incr_ok, &frozen, &level[cs..ce], &mut st);
                    }
                    barrier.wait();
                    if w == 0 {
                        // Commit: worker 0 appends every chunk in worker
                        // order, reproducing the level's layout order.
                        let mut open = work.write().expect("work lock poisoned");
                        for (ww, worker) in workers.iter().enumerate().take(threads) {
                            let st = worker.lock().expect("worker mutex poisoned");
                            let (cs, ce) = chunk_range(level.len(), threads, ww);
                            if diff_active {
                                commit_chunk_diff(&mut open, &level[cs..ce], &st);
                            } else {
                                commit_chunk(&mut open, &level[cs..ce], &st);
                            }
                        }
                    }
                    barrier.wait();
                }
            });
            self.work = work.into_inner().expect("work lock poisoned");
        }

        // Relayout into the sequential pass's exact arena order. Standard
        // form commits a span for every canonical variable (empty sets get
        // the degenerate `(k, k)`); inductive form leaves empty sets at
        // `(0, 0)`.
        self.final_arena.clear();
        self.final_spans.clear();
        self.final_spans.resize(n, (0, 0));
        for &v in &self.layout {
            let (s, e) = self.work.spans[v.index()];
            if e > s || matches!(parts.form, Form::Standard) {
                let start = u32::try_from(self.final_arena.len())
                    .expect("least-solution arena overflow");
                self.final_arena
                    .extend_from_slice(&self.work.arena[s as usize..e as usize]);
                self.final_spans[v.index()] = (start, start + (e - s));
            }
        }

        // Record this run as the next diff baseline: the stable arena plus
        // these rows and representatives are exactly what an incremental
        // follow-up needs.
        self.prev_csr.copy_from(&self.csr);
        self.prev_rep.clone_from(&self.rep);
        self.prev_valid = true;

        if let Some(rec) = rec {
            let set_vars = self.final_spans.iter().filter(|(s, e)| e > s).count();
            rec.set(Counter::LsSetVars, set_vars as u64);
            rec.set(Counter::LsEntries, self.final_arena.len() as u64);
            if diff_active {
                rec.add(Counter::LsDeltaFull, self.work.stat_full);
                rec.add(Counter::LsDeltaIncr, self.work.stat_incr);
                rec.add(Counter::LsDeltaIn, self.work.stat_in);
                rec.add(Counter::LsDeltaFresh, self.work.stat_fresh);
            }
            if let Some(t0) = t0 {
                rec.record_ns(Phase::ParLeast, t0.elapsed().as_nanos() as u64);
            }
        }
    }

    /// Builds the evaluation schedule for `parts`: representative map,
    /// layout order, frozen CSR rows, condensation levels, and the stable
    /// per-level buckets. Shared by [`run_with`](ParLeast::run_with) and
    /// [`run_revalidate`](ParLeast::run_revalidate).
    fn build_schedule(&mut self, parts: &LeastParts<'_>, rec: Option<&Recorder>) {
        parts.rep_map_into(&mut self.rep);
        parts.layout_order_into(&self.rep, &mut self.layout);
        // Freeze the canonicalized read path once, on the calling thread:
        // after this, neither the levels sweep nor any worker's scan reads
        // the graph or chases a forwarding pointer.
        let csr_t0 = rec.map(|_| std::time::Instant::now());
        self.csr.build(parts, &self.layout);
        if let (Some(rec), Some(t0)) = (rec, csr_t0) {
            rec.record_ns(Phase::CsrBuild, t0.elapsed().as_nanos() as u64);
            rec.add(Counter::CsrBuilds, 1);
        }
        let max_level = parts.levels_into(&self.csr, &self.layout, &mut self.levels);
        let nlevels = if self.layout.is_empty() { 0 } else { max_level as usize + 1 };

        // Stable counting sort of `layout` into per-level buckets.
        self.level_ranges.clear();
        self.level_counts.clear();
        self.level_counts.resize(nlevels, 0);
        for &v in &self.layout {
            self.level_counts[self.levels[v.index()] as usize] += 1;
        }
        let mut start = 0u32;
        for l in 0..nlevels {
            let count = self.level_counts[l];
            self.level_ranges.push((start, start + count));
            self.level_counts[l] = start;
            start += count;
        }
        self.level_order.clear();
        self.level_order.resize(self.layout.len(), Var::new(0));
        for &v in &self.layout {
            let cursor = &mut self.level_counts[self.levels[v.index()] as usize];
            self.level_order[*cursor as usize] = v;
            *cursor += 1;
        }
    }

    /// Re-evaluates the least solution of `parts` against the **retained
    /// baseline** of the previous run, recomputing only variables whose
    /// result can actually have changed — the `bane-serve` re-solve kernel
    /// (docs/INCREMENTAL.md).
    ///
    /// A variable is **dirty** when the baseline cannot vouch for it: no
    /// baseline at all, not canonical in the baseline run, a source or
    /// canonical-predecessor row that differs from the baseline's, or any
    /// dirty predecessor (propagated along the condensation order). Every
    /// other variable's retained arena span is provably byte-identical to
    /// what a full pass would produce — same row, and (inductively)
    /// identical predecessor sets — so it is reused untouched. Dirty
    /// variables get a full per-level recompute (never incremental), which
    /// is what keeps this path sound under **non-monotone** change: unlike
    /// difference propagation, nothing assumes the old set is a lower bound,
    /// so constraint *removal* (a replayed fresh solver) is handled by the
    /// same code path as growth.
    ///
    /// The output (via [`solution`](ParLeast::solution)) is byte-identical
    /// to a cold [`Solver::least_solution`] of the same solved system at
    /// every thread count and backend. The returned [`RevalidateOutcome`]
    /// reports how localized the pass was; an unchanged system reports zero
    /// dirty variables and zero dirty levels.
    ///
    /// Retained arena note: reused spans keep their old arena positions, so
    /// the working arena compacts only on the next full
    /// [`run_with`](ParLeast::run_with); a long-lived session trades that
    /// growth for not re-merging the clean majority of the system.
    pub fn run_revalidate(
        &mut self,
        parts: &LeastParts<'_>,
        threads: usize,
        kind: SolSetKind,
        rec: Option<&Recorder>,
    ) -> RevalidateOutcome {
        let t0 = rec.map(|_| std::time::Instant::now());
        let threads = threads.max(1);
        let parts = *parts;
        self.build_schedule(&parts, rec);

        while self.workers.len() < threads {
            self.workers.push(Mutex::new(WorkerState::default()));
        }

        let n = self.rep.len();
        let cold = !self.prev_valid;
        if cold {
            // No baseline to preserve: start from a compact arena.
            self.work.arena.clear();
            self.work.spans.clear();
        }
        self.work.spans.resize(n, (0, 0));
        // The incremental (diff) machinery is inert on this path: every
        // dirty variable is a full recompute.
        self.incr_ok.clear();
        self.work.delta_spans.clear();
        self.work.delta_spans.resize(n, (0, 0));
        self.work.delta_full.clear();
        self.work.delta_full.resize(n, false);

        // Dirty sweep, in layout order so predecessor flags are final
        // before their successors test them (predecessors always precede
        // their successors in the layout).
        self.dirty.clear();
        self.dirty.resize(n, false);
        let prev_rows = self.prev_csr.rows();
        let mut dirty_vars = 0usize;
        for &v in &self.layout {
            let i = v.index();
            // Standard form degenerates gracefully: its pred rows are empty
            // in both snapshots, so only the source-row compare can fire.
            let d = cold
                || i >= prev_rows
                || self.prev_rep.get(i).copied() != Some(v)
                || self.csr.srcs(v) != self.prev_csr.srcs(v)
                || self.csr.preds(v) != self.prev_csr.preds(v)
                || self.csr.preds(v).iter().any(|&u| self.dirty[u.index()]);
            if d {
                self.dirty[i] = true;
                // The old span (if any) is stale; an empty recompute must
                // not leave it behind.
                self.work.spans[i] = (0, 0);
                dirty_vars += 1;
            }
        }

        // Bucket the dirty variables by level, preserving layout order
        // within each level exactly as `level_order` does.
        self.dirty_order.clear();
        self.dirty_ranges.clear();
        let mut dirty_levels = 0usize;
        for &(ls, le) in &self.level_ranges {
            let start = self.dirty_order.len() as u32;
            for &v in &self.level_order[ls as usize..le as usize] {
                if self.dirty[v.index()] {
                    self.dirty_order.push(v);
                }
            }
            let end = self.dirty_order.len() as u32;
            self.dirty_ranges.push((start, end));
            if end > start {
                dirty_levels += 1;
            }
        }

        if dirty_vars > 0 {
            if threads == 1 {
                let st = self.workers[0].get_mut().expect("worker mutex poisoned");
                for &(ds, de) in &self.dirty_ranges {
                    let level = &self.dirty_order[ds as usize..de as usize];
                    if level.is_empty() {
                        continue;
                    }
                    scan_chunk(parts.form, kind, &self.csr, None, &self.incr_ok, &self.work, level, st);
                    commit_chunk(&mut self.work, level, st);
                }
            } else {
                let work = RwLock::new(std::mem::take(&mut self.work));
                let barrier = Barrier::new(threads);
                let dirty_ranges = &self.dirty_ranges;
                let dirty_order = &self.dirty_order;
                let workers = &self.workers;
                let csr = &self.csr;
                let incr_ok = &self.incr_ok;
                let form = parts.form;
                Pool::new(threads).broadcast(|w| {
                    for &(ds, de) in dirty_ranges {
                        let level = &dirty_order[ds as usize..de as usize];
                        if level.is_empty() {
                            continue;
                        }
                        {
                            let frozen = work.read().expect("work lock poisoned");
                            let mut st = workers[w].lock().expect("worker mutex poisoned");
                            let (cs, ce) = chunk_range(level.len(), threads, w);
                            scan_chunk(form, kind, csr, None, incr_ok, &frozen, &level[cs..ce], &mut st);
                        }
                        barrier.wait();
                        if w == 0 {
                            let mut open = work.write().expect("work lock poisoned");
                            for (ww, worker) in workers.iter().enumerate().take(threads) {
                                let st = worker.lock().expect("worker mutex poisoned");
                                let (cs, ce) = chunk_range(level.len(), threads, ww);
                                commit_chunk(&mut open, &level[cs..ce], &st);
                            }
                        }
                        barrier.wait();
                    }
                });
                self.work = work.into_inner().expect("work lock poisoned");
            }
        }

        // Relayout into the sequential pass's exact arena order — reused
        // and recomputed spans alike.
        self.final_arena.clear();
        self.final_spans.clear();
        self.final_spans.resize(n, (0, 0));
        for &v in &self.layout {
            let (s, e) = self.work.spans[v.index()];
            if e > s || matches!(parts.form, Form::Standard) {
                let start = u32::try_from(self.final_arena.len())
                    .expect("least-solution arena overflow");
                self.final_arena
                    .extend_from_slice(&self.work.arena[s as usize..e as usize]);
                self.final_spans[v.index()] = (start, start + (e - s));
            }
        }

        self.prev_csr.copy_from(&self.csr);
        self.prev_rep.clone_from(&self.rep);
        self.prev_valid = true;

        if let Some(rec) = rec {
            let set_vars = self.final_spans.iter().filter(|(s, e)| e > s).count();
            rec.set(Counter::LsSetVars, set_vars as u64);
            rec.set(Counter::LsEntries, self.final_arena.len() as u64);
            if let Some(t0) = t0 {
                rec.record_ns(Phase::ParLeast, t0.elapsed().as_nanos() as u64);
            }
        }

        RevalidateOutcome {
            total_levels: self.level_ranges.len(),
            dirty_levels,
            dirty_vars,
            reused_vars: self.layout.len() - dirty_vars,
            fell_back: false,
        }
    }

    /// The solution computed by the last [`run`](ParLeast::run), as an owned
    /// [`LeastSolution`] (byte-identical to the sequential pass's).
    ///
    /// # Panics
    ///
    /// Panics (via the constructor's debug assertions) if called before any
    /// `run`.
    pub fn solution(&self) -> LeastSolution {
        LeastSolution::from_parts(
            self.rep.clone(),
            self.final_arena.clone(),
            self.final_spans.clone(),
        )
    }

    /// Number of condensation levels the last run evaluated.
    pub fn level_count(&self) -> usize {
        self.level_ranges.len()
    }
}

/// Evaluates `vars` (a slice of one level, in layout order) against the
/// frozen lower-level `work` state, appending each result segment to
/// `st.out`.
///
/// Reads only the frozen [`CsrSnapshot`] (canonical, sorted, distinct rows)
/// and the committed spans — never the live graph — so the whole scan is
/// pointer-chase-free streaming over flat arrays. With `prev` (difference
/// propagation), a variable covered by the baseline run emits only its
/// delta; everything else emits its full set.
#[allow(clippy::too_many_arguments)]
fn scan_chunk(
    form: Form,
    kind: SolSetKind,
    csr: &CsrSnapshot,
    prev: Option<&CsrSnapshot>,
    incr_ok: &[bool],
    work: &WorkBufs,
    vars: &[Var],
    st: &mut WorkerState,
) {
    let WorkerState {
        out,
        bounds,
        kinds,
        runs,
        in_runs,
        src_delta,
        dset,
        elems_scanned,
        merge,
    } = st;
    out.clear();
    bounds.clear();
    kinds.clear();
    *elems_scanned = 0;
    // Per-level arena reset: blocks interned for one variable are shared by
    // the rest of the level (the block-sharing locality the backends bank
    // on), without unbounded growth across levels.
    merge.map_arena.clear();
    for &v in vars {
        let srcs = csr.srcs(v);
        let start = out.len() as u32;
        let incremental = match prev {
            Some(_) => incr_ok.get(v.index()).copied().unwrap_or(false),
            None => false,
        };
        if !incremental {
            match form {
                Form::Standard => {
                    // Standard form's sets are exactly the frozen source
                    // rows.
                    out.extend_from_slice(srcs);
                    *elems_scanned += srcs.len() as u64;
                }
                Form::Inductive => {
                    runs.clear();
                    for &u in csr.preds(v) {
                        let span = work.spans[u.index()];
                        if span.1 > span.0 {
                            runs.push(span);
                        }
                    }
                    let runs: &[(u32, u32)] = runs;
                    match (srcs.is_empty(), runs) {
                        (true, []) => {}
                        (false, []) => {
                            out.extend_from_slice(srcs);
                            *elems_scanned += srcs.len() as u64;
                        }
                        (true, &[(s, e)]) => {
                            out.extend_from_slice(&work.arena[s as usize..e as usize]);
                            *elems_scanned += (e - s) as u64;
                        }
                        _ => {
                            let extra = usize::from(!srcs.is_empty());
                            let total = runs.len() + extra;
                            let input_len = srcs.len()
                                + runs.iter().map(|&(s, e)| (e - s) as usize).sum::<usize>();
                            *elems_scanned += input_len as u64;
                            let input = |i: usize| -> &[TermId] {
                                if i < extra {
                                    srcs
                                } else {
                                    let (s, e) = runs[i - extra];
                                    &work.arena[s as usize..e as usize]
                                }
                            };
                            union_runs(total, input, wants_bitmap(kind, input_len), merge, out);
                        }
                    }
                }
            }
            kinds.push(ScanKind::Full);
        } else {
            let prev = prev.expect("incremental scan without a baseline");
            // New sources: anything the baseline's row lacked. Unchanged
            // rows — the overwhelmingly common case — are detected by a
            // vectorized slice compare instead of the element-wise diff
            // walk.
            let prev_srcs = prev.srcs(v);
            if srcs == prev_srcs {
                src_delta.clear();
            } else {
                diff_sorted(srcs, prev_srcs, src_delta);
            }
            // Predecessor contributions: old predecessors feed their delta
            // (or their full set, if they themselves were fully
            // re-evaluated); predecessors that joined the row feed
            // everything.
            in_runs.clear();
            let old_preds = prev.preds(v);
            let mut op = 0usize;
            for &u in csr.preds(v) {
                while op < old_preds.len() && old_preds[op] < u {
                    op += 1;
                }
                let is_old = op < old_preds.len() && old_preds[op] == u;
                if !is_old || work.delta_full[u.index()] {
                    let (s, e) = work.spans[u.index()];
                    if e > s {
                        in_runs.push((s, e, false));
                    }
                } else {
                    let (s, e) = work.delta_spans[u.index()];
                    if e > s {
                        in_runs.push((s, e, true));
                    }
                }
            }
            let extra = usize::from(!src_delta.is_empty());
            let total = in_runs.len() + extra;
            let input_len = src_delta.len()
                + in_runs.iter().map(|&(s, e, _)| (e - s) as usize).sum::<usize>();
            *elems_scanned += input_len as u64;
            let src_delta: &[TermId] = src_delta;
            let in_runs: &[(u32, u32, bool)] = in_runs;
            let input = |i: usize| -> &[TermId] {
                if i < extra {
                    src_delta
                } else {
                    let (s, e, is_delta) = in_runs[i - extra];
                    if is_delta {
                        &work.delta_arena[s as usize..e as usize]
                    } else {
                        &work.arena[s as usize..e as usize]
                    }
                }
            };
            dset.clear();
            union_runs(total, input, wants_bitmap(kind, input_len), merge, dset);
            // fresh = contribution \ stable: the delta this variable hands
            // its own successors, and all the commit has to merge.
            let (ss, se) = work.spans[v.index()];
            let stable = &work.arena[ss as usize..se as usize];
            for &x in dset.iter() {
                if stable.binary_search(&x).is_err() {
                    out.push(x);
                }
            }
            kinds.push(ScanKind::Incr);
        }
        bounds.push((start, out.len() as u32));
    }
}

/// Appends a worker's scanned full sets for `vars` to the shared arena, in
/// chunk order. Deterministic: pure concatenation, no reordering. The
/// non-diff commit path — every segment is a complete set.
fn commit_chunk(work: &mut WorkBufs, vars: &[Var], st: &WorkerState) {
    debug_assert_eq!(st.bounds.len(), vars.len());
    for (i, &v) in vars.iter().enumerate() {
        debug_assert_eq!(st.kinds[i], ScanKind::Full);
        let (s, e) = st.bounds[i];
        if e > s {
            let start =
                u32::try_from(work.arena.len()).expect("least-solution arena overflow");
            work.arena.extend_from_slice(&st.out[s as usize..e as usize]);
            work.spans[v.index()] = (start, start + (e - s));
        }
    }
}

/// The difference-propagation commit: full segments replace the variable's
/// span; incremental segments append their delta and merge it into the
/// retained stable set (skipping untouched variables entirely).
fn commit_chunk_diff(work: &mut WorkBufs, vars: &[Var], st: &WorkerState) {
    debug_assert_eq!(st.bounds.len(), vars.len());
    let WorkBufs {
        arena,
        spans,
        delta_arena,
        delta_spans,
        delta_full,
        merge_scratch,
        stat_full,
        stat_incr,
        stat_in,
        stat_fresh,
    } = work;
    *stat_in += st.elems_scanned;
    for (i, &v) in vars.iter().enumerate() {
        let (s, e) = st.bounds[i];
        match st.kinds[i] {
            ScanKind::Full => {
                *stat_full += 1;
                if e > s {
                    let start =
                        u32::try_from(arena.len()).expect("least-solution arena overflow");
                    arena.extend_from_slice(&st.out[s as usize..e as usize]);
                    spans[v.index()] = (start, start + (e - s));
                } else {
                    spans[v.index()] = (0, 0);
                }
                // The whole set is this run's delta: successors read the
                // span directly instead of a copied delta.
                delta_full[v.index()] = true;
            }
            ScanKind::Incr => {
                *stat_incr += 1;
                if e > s {
                    let fresh = &st.out[s as usize..e as usize];
                    *stat_fresh += fresh.len() as u64;
                    let ds = u32::try_from(delta_arena.len())
                        .expect("least-solution delta overflow");
                    delta_arena.extend_from_slice(fresh);
                    delta_spans[v.index()] = (ds, ds + (e - s));
                    // New stable = old stable ∪ fresh, appended (the old
                    // span is abandoned; a non-diff run compacts the
                    // arena).
                    let (os, oe) = spans[v.index()];
                    merge_scratch.clear();
                    merge_sorted_dedup(
                        &arena[os as usize..oe as usize],
                        fresh,
                        merge_scratch,
                    );
                    let start =
                        u32::try_from(arena.len()).expect("least-solution arena overflow");
                    arena.extend_from_slice(merge_scratch);
                    spans[v.index()] =
                        (start, start + u32::try_from(merge_scratch.len()).unwrap());
                }
                // Empty delta: the stable span (and everything downstream)
                // is untouched.
            }
        }
    }
}

/// One-shot convenience: the least solution of a solved `solver` computed on
/// `threads` workers. Byte-identical to [`Solver::least_solution`].
pub fn least_solution(solver: &Solver, threads: usize) -> LeastSolution {
    let mut par = ParLeast::new();
    par.run(&solver.least_parts(), threads, None);
    par.solution()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bane_core::solver::SolverConfig;
    use bane_util::SplitMix64;

    fn configs() -> [SolverConfig; 4] {
        [
            SolverConfig::sf_plain(),
            SolverConfig::if_plain(),
            SolverConfig::sf_online(),
            SolverConfig::if_online(),
        ]
    }

    /// Random layered constraint systems with cycles and sources; the last
    /// `hold_back` variable-variable edges are returned unfed for
    /// incremental-growth tests.
    fn random_system(config: SolverConfig, seed: u64, hold_back: usize) -> (Solver, Vec<(Var, Var)>) {
        let mut rng = SplitMix64::new(seed);
        let mut s = Solver::new(config);
        let n = 60;
        let vs: Vec<Var> = (0..n).map(|_| s.fresh_var()).collect();
        let mut ts = Vec::new();
        for k in 0..8 {
            let c = s.register_nullary(format!("c{k}"));
            ts.push(s.term(c, vec![]));
        }
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.next_bool(0.05) {
                    edges.push((vs[i], vs[j]));
                }
            }
        }
        // A few back edges to form cycles.
        for _ in 0..6 {
            let a = rng.next_below(n as u64) as usize;
            let b = rng.next_below(n as u64) as usize;
            edges.push((vs[a], vs[b]));
        }
        let held = edges.split_off(edges.len().saturating_sub(hold_back));
        for &(a, b) in &edges {
            s.add(a, b);
        }
        for (k, &t) in ts.iter().enumerate() {
            s.add(t, vs[(k * 7) % n]);
        }
        s.solve();
        (s, held)
    }

    fn random_solver(config: SolverConfig, seed: u64) -> Solver {
        random_system(config, seed, 0).0
    }

    #[test]
    fn byte_identical_to_sequential_on_random_systems() {
        for config in configs() {
            for seed in 0..6u64 {
                let mut s = random_solver(config, seed);
                let seq = s.least_solution();
                for threads in [1, 2, 4, 8] {
                    let par = least_solution(&s, threads);
                    assert_eq!(par, seq, "{config:?} seed {seed} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn evaluator_is_reusable_across_runs_and_thread_counts() {
        let mut par = ParLeast::new();
        for seed in [3u64, 4] {
            let mut s = random_solver(SolverConfig::if_online(), seed);
            let seq = s.least_solution();
            for threads in [2, 1, 4] {
                par.run(&s.least_parts(), threads, None);
                assert_eq!(par.solution(), seq, "seed {seed} threads {threads}");
            }
            assert!(par.level_count() >= 1);
        }
    }

    /// Every backend × thread count × diff setting is byte-identical to the
    /// sequential reference, including warm re-runs.
    #[test]
    fn run_with_is_byte_identical_across_backends() {
        for config in configs() {
            for seed in 0..4u64 {
                let mut s = random_solver(config, 0xB0B + seed);
                let seq = s.least_solution();
                for kind in SolSetKind::ALL {
                    for threads in [1, 4] {
                        let mut par = ParLeast::new();
                        for diff in [false, true, true] {
                            par.run_with(&s.least_parts(), threads, kind, diff, None);
                            assert_eq!(
                                par.solution(),
                                seq,
                                "{config:?} seed {seed} {kind:?} threads {threads} diff {diff}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Difference propagation across system growth: feed held-back edges,
    /// re-solve, and the diff run must match a cold sequential reference.
    #[test]
    fn diff_runs_track_system_growth() {
        for config in [SolverConfig::if_online(), SolverConfig::sf_online()] {
            for seed in 0..4u64 {
                for kind in SolSetKind::ALL {
                    for threads in [1, 4] {
                        let (mut s, held) = random_system(config, 0xD1FF + seed, 5);
                        let mut par = ParLeast::new();
                        par.run_with(&s.least_parts(), threads, kind, true, None);
                        assert_eq!(par.solution(), s.least_solution(), "baseline");
                        for &(a, b) in &held {
                            s.add(a, b);
                        }
                        s.solve();
                        par.run_with(&s.least_parts(), threads, kind, true, None);
                        assert_eq!(
                            par.solution(),
                            s.least_solution(),
                            "{config:?} seed {seed} {kind:?} threads {threads} grown"
                        );
                    }
                }
            }
        }
    }

    /// A warm diff run over an unchanged system re-merges nothing.
    #[test]
    fn unchanged_diff_run_is_all_incremental() {
        let mut s = random_solver(SolverConfig::if_online(), 11);
        let seq = s.least_solution();
        let rec = Recorder::new();
        let mut par = ParLeast::new();
        par.run_with(&s.least_parts(), 1, SolSetKind::Bitmap, true, Some(&rec));
        assert_eq!(par.solution(), seq);
        assert_eq!(rec.get(Counter::LsDeltaIncr), 0, "cold run is all full merges");
        par.run_with(&s.least_parts(), 1, SolSetKind::Bitmap, true, Some(&rec));
        assert_eq!(par.solution(), seq);
        assert_eq!(rec.get(Counter::LsDeltaFull), 0, "warm run has no full merges");
        assert_eq!(rec.get(Counter::LsDeltaFresh), 0, "unchanged system yields no fresh elements");
    }

    /// Revalidation from cold, after monotone growth, and over an unchanged
    /// system — byte-identical to the sequential pass in every case, with
    /// the unchanged pass reporting zero dirty work.
    #[test]
    fn revalidate_matches_sequential_across_growth() {
        for config in configs() {
            for seed in 0..3u64 {
                for kind in SolSetKind::ALL {
                    for threads in [1, 2, 4, 8] {
                        let (mut s, held) = random_system(config, 0x5E5E + seed, 4);
                        let mut par = ParLeast::new();
                        let out = par.run_revalidate(&s.least_parts(), threads, kind, None);
                        assert_eq!(par.solution(), s.least_solution(), "cold");
                        assert_eq!(out.reused_vars, 0, "cold pass reuses nothing");

                        // Unchanged system: everything reuses.
                        let out = par.run_revalidate(&s.least_parts(), threads, kind, None);
                        assert_eq!(par.solution(), s.least_solution(), "unchanged");
                        assert_eq!(out.dirty_vars, 0, "{config:?} unchanged is all-clean");
                        assert_eq!(out.dirty_levels, 0);
                        assert_eq!(out.reused_vars, par.layout.len());

                        // Monotone growth through the same live solver.
                        for &(a, b) in &held {
                            s.add(a, b);
                        }
                        s.solve();
                        let out = par.run_revalidate(&s.least_parts(), threads, kind, None);
                        assert_eq!(
                            par.solution(),
                            s.least_solution(),
                            "{config:?} seed {seed} {kind:?} threads {threads} grown"
                        );
                        assert_eq!(out.dirty_vars + out.reused_vars, par.layout.len());
                    }
                }
            }
        }
    }

    /// Non-monotone change: the baseline comes from a *larger* system and
    /// the next pass evaluates a fresh solver missing some of its edges —
    /// exactly the shape of `bane-serve`'s replay path after a removal.
    /// Reused spans must still be byte-correct.
    #[test]
    fn revalidate_survives_constraint_removal_via_fresh_solver() {
        for config in [SolverConfig::if_online(), SolverConfig::sf_online()] {
            for seed in 0..3u64 {
                for kind in SolSetKind::ALL {
                    for threads in [1, 4] {
                        let mut par = ParLeast::new();
                        // Baseline: the full system.
                        let (mut full, _) = random_system(config, 0xDEAD + seed, 0);
                        par.run_revalidate(&full.least_parts(), threads, kind, None);
                        assert_eq!(par.solution(), full.least_solution(), "baseline");

                        // "Removal": rebuild from scratch, holding edges back.
                        let (mut shrunk, _held) = random_system(config, 0xDEAD + seed, 5);
                        let out =
                            par.run_revalidate(&shrunk.least_parts(), threads, kind, None);
                        assert_eq!(
                            par.solution(),
                            shrunk.least_solution(),
                            "{config:?} seed {seed} {kind:?} threads {threads} shrunk"
                        );
                        assert!(out.total_levels >= out.dirty_levels);
                    }
                }
            }
        }
    }

    /// A localized edit must not dirty the whole schedule: grow one held-back
    /// edge deep in a long chain and check that clean levels survive.
    #[test]
    fn revalidate_localizes_dirty_levels_on_chain_edit() {
        let mut s = Solver::new(SolverConfig::if_online());
        let c = s.register_nullary("c");
        let t = s.term(c, vec![]);
        let d = s.register_nullary("d");
        let td = s.term(d, vec![]);
        // Two independent chains; the edit touches only the second.
        let chain_a: Vec<Var> = (0..20).map(|_| s.fresh_var()).collect();
        let chain_b: Vec<Var> = (0..20).map(|_| s.fresh_var()).collect();
        for w in chain_a.windows(2) {
            s.add(w[0], w[1]);
        }
        for w in chain_b.windows(2) {
            s.add(w[0], w[1]);
        }
        s.add(t, chain_a[0]);
        s.add(t, chain_b[0]);
        s.solve();
        let mut par = ParLeast::new();
        par.run_revalidate(&s.least_parts(), 2, SolSetKind::SortedSpan, None);
        assert_eq!(par.solution(), s.least_solution());

        // Edit: a new source lands mid-way down chain B.
        s.add(td, chain_b[10]);
        s.solve();
        let out = par.run_revalidate(&s.least_parts(), 2, SolSetKind::SortedSpan, None);
        assert_eq!(par.solution(), s.least_solution(), "post-edit bytes");
        assert!(
            out.dirty_levels < out.total_levels,
            "edit at level 10 must leave lower levels clean: {out:?}"
        );
        assert!(out.reused_vars > out.dirty_vars, "most of the system is clean: {out:?}");
    }

    /// Interleaving diff runs and revalidation runs on one evaluator keeps
    /// the shared baseline coherent.
    #[test]
    fn revalidate_interoperates_with_diff_runs() {
        let (mut s, held) = random_system(SolverConfig::if_online(), 0x1A7E, 6);
        let mut par = ParLeast::new();
        par.run_with(&s.least_parts(), 2, SolSetKind::Hybrid, true, None);
        assert_eq!(par.solution(), s.least_solution());
        for &(a, b) in &held[..3] {
            s.add(a, b);
        }
        s.solve();
        let out = par.run_revalidate(&s.least_parts(), 2, SolSetKind::Hybrid, None);
        assert_eq!(par.solution(), s.least_solution(), "revalidate after diff baseline");
        assert_eq!(out.dirty_vars + out.reused_vars, par.layout.len());
        for &(a, b) in &held[3..] {
            s.add(a, b);
        }
        s.solve();
        par.run_with(&s.least_parts(), 2, SolSetKind::Hybrid, true, None);
        assert_eq!(par.solution(), s.least_solution(), "diff after revalidate baseline");
    }

    #[test]
    fn empty_system_yields_empty_solution() {
        let mut s = Solver::new(SolverConfig::if_online());
        s.solve();
        let par = least_solution(&s, 4);
        assert_eq!(par, s.least_solution());
        assert!(par.is_empty());
    }

    #[test]
    fn records_observability_counters() {
        let mut s = random_solver(SolverConfig::if_online(), 1);
        let seq = s.least_solution();
        let rec = Recorder::new();
        let mut par = ParLeast::new();
        par.run(&s.least_parts(), 2, Some(&rec));
        assert_eq!(par.solution(), seq);
        assert_eq!(rec.get(Counter::LsEntries), seq.total_entries() as u64);
        let report = rec.report("par-least");
        assert!(report.phases.iter().any(|p| p.phase == Phase::ParLeast.name()));
    }
}
