//! SCC-level-parallel least-solution evaluation.
//!
//! The sequential pass in `bane-core` evaluates equation (1) by walking the
//! canonical variables in increasing order, each set the union of its own
//! sources and its canonical predecessors' already-computed sets. The
//! inductive-form invariant — predecessor edges always decrease the
//! variable order — means the canonical predecessor graph is a DAG, so its
//! **condensation levels** (`level(v) = 1 + max level of v's predecessors`)
//! are independent batches: every variable on a level reads only sets
//! committed on strictly lower levels. [`ParLeast`] evaluates each level's
//! variables in parallel and commits the results in a fixed order, producing
//! a [`LeastSolution`] **byte-identical** to the sequential pass at every
//! thread count (`PartialEq` on `LeastSolution` compares the raw buffers, so
//! the tests pin exactly that).
//!
//! # Why bytes match
//!
//! Each variable's set is canonical — sorted and deduplicated — so its
//! content is independent of the merge structure that produced it. The only
//! layout freedom is *arena order*, and the final relayout step writes sets
//! in the sequential pass's exact commit order (creation order for standard
//! form, increasing variable order for inductive form), including standard
//! form's empty `(k, k)` spans. Identical contents in identical order is
//! identical bytes.
//!
//! # The CSR read path
//!
//! Before any evaluation, the run freezes the solved graph into a
//! [`CsrSnapshot`] — canonical, self-free, sorted predecessor rows and
//! sorted source rows, laid out in evaluation order. The snapshot is the
//! *same type the sequential pass traverses*, built once on the calling
//! thread: workers never read the live graph or chase a forwarding
//! pointer, they stream flat arrays. This is also what makes the scan
//! trivially safe to share read-only across threads.
//!
//! # Scheduling
//!
//! One [`Pool::broadcast`] spans the whole pass; workers meet at a
//! [`Barrier`] twice per level (end of scan, end of commit). Worker results
//! travel through per-worker [`Mutex`] slots — uncontended by construction:
//! each worker locks only its own slot during the scan, and worker 0 drains
//! them during the commit while everyone else waits at the barrier. With
//! `threads == 1` the pass runs inline with no locks, no barriers, and —
//! once warm — no allocations (pinned by `bane-core`'s allocation test).

use bane_core::least::{merge_sorted_dedup, CsrSnapshot, LeastParts, LeastSolution};
use bane_core::solver::{Form, Solver};
use bane_core::{TermId, Var};
use bane_obs::{Counter, Phase, Recorder};
use bane_util::idx::Idx;
use std::sync::{Barrier, Mutex, RwLock};

use crate::pool::{chunk_range, Pool};

/// The shared evaluation state: the arena sets are committed into, plus the
/// span of every canonical variable already evaluated.
#[derive(Clone, Debug, Default)]
struct WorkBufs {
    arena: Vec<TermId>,
    /// Indexed by raw variable index; `(0, 0)` until the variable's level
    /// commits (and forever, for collapsed variables and empty sets).
    spans: Vec<(u32, u32)>,
}

/// One worker's private scratch: scan output plus merge buffers.
///
/// Everything is reused across levels and across runs, so a warmed
/// single-threaded pass allocates nothing.
#[derive(Clone, Debug, Default)]
struct WorkerState {
    /// Concatenated result sets of this worker's chunk, in chunk order.
    out: Vec<TermId>,
    /// Per-chunk-item range into `out` (empty when the set is empty).
    bounds: Vec<(u32, u32)>,
    runs: Vec<(u32, u32)>,
    acc: Vec<TermId>,
    buf_b: Vec<TermId>,
    bounds_a: Vec<(u32, u32)>,
    bounds_b: Vec<(u32, u32)>,
}

/// A reusable SCC-level-parallel least-solution evaluator.
///
/// Feed it [`LeastParts`] (borrowed from a solved [`Solver`] or assembled by
/// an engine that owns the parts) via [`run`](ParLeast::run), then read the
/// result with [`solution`](ParLeast::solution). The output is
/// byte-identical to [`Solver::least_solution`] at every thread count.
///
/// # Examples
///
/// ```
/// use bane_core::solver::{Solver, SolverConfig};
/// use bane_par::ParLeast;
///
/// let mut s = Solver::new(SolverConfig::if_online());
/// let c = s.register_nullary("c");
/// let src = s.term(c, vec![]);
/// let (x, y) = (s.fresh_var(), s.fresh_var());
/// s.add(src, x);
/// s.add(x, y);
/// s.solve();
///
/// let mut par = ParLeast::new();
/// par.run(&s.least_parts(), 4, None);
/// let ls = par.solution();
/// assert_eq!(ls, s.least_solution()); // byte-identical
/// assert_eq!(ls.get(s.find(y)), &[src]);
/// ```
#[derive(Debug, Default)]
pub struct ParLeast {
    rep: Vec<Var>,
    layout: Vec<Var>,
    levels: Vec<u32>,
    /// Per-level counters, reused as bucket-fill cursors.
    level_counts: Vec<u32>,
    /// Per-level `(start, end)` into `level_order`.
    level_ranges: Vec<(u32, u32)>,
    /// `layout` stably bucketed by level: within a level, variables keep
    /// their layout order, so concatenating worker chunks in worker order
    /// reproduces it exactly.
    level_order: Vec<Var>,
    /// The frozen, canonicalized CSR view every scan reads. Built once per
    /// run on the calling thread; workers never touch the graph or the
    /// forwarding pointers after that.
    csr: CsrSnapshot,
    work: WorkBufs,
    workers: Vec<Mutex<WorkerState>>,
    final_arena: Vec<TermId>,
    final_spans: Vec<(u32, u32)>,
}

impl ParLeast {
    /// A fresh evaluator with no buffers warmed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates the least solution of `parts` on `threads` workers
    /// (clamped to at least 1), reusing all internal buffers.
    ///
    /// With a recorder, the whole pass is timed under
    /// [`Phase::ParLeast`] and the `ls.*` counters are set to match the
    /// sequential pass's accounting.
    pub fn run(&mut self, parts: &LeastParts<'_>, threads: usize, rec: Option<&Recorder>) {
        let t0 = rec.map(|_| std::time::Instant::now());
        let threads = threads.max(1);
        let parts = *parts;
        parts.rep_map_into(&mut self.rep);
        parts.layout_order_into(&self.rep, &mut self.layout);
        // Freeze the canonicalized read path once, on the calling thread:
        // after this, neither the levels sweep nor any worker's scan reads
        // the graph or chases a forwarding pointer.
        let csr_t0 = rec.map(|_| std::time::Instant::now());
        self.csr.build(&parts, &self.layout);
        if let (Some(rec), Some(t0)) = (rec, csr_t0) {
            rec.record_ns(Phase::CsrBuild, t0.elapsed().as_nanos() as u64);
            rec.add(Counter::CsrBuilds, 1);
        }
        let max_level = parts.levels_into(&self.csr, &self.layout, &mut self.levels);
        let nlevels = if self.layout.is_empty() { 0 } else { max_level as usize + 1 };

        // Stable counting sort of `layout` into per-level buckets.
        self.level_ranges.clear();
        self.level_counts.clear();
        self.level_counts.resize(nlevels, 0);
        for &v in &self.layout {
            self.level_counts[self.levels[v.index()] as usize] += 1;
        }
        let mut start = 0u32;
        for l in 0..nlevels {
            let count = self.level_counts[l];
            self.level_ranges.push((start, start + count));
            self.level_counts[l] = start;
            start += count;
        }
        self.level_order.clear();
        self.level_order.resize(self.layout.len(), Var::new(0));
        for &v in &self.layout {
            let cursor = &mut self.level_counts[self.levels[v.index()] as usize];
            self.level_order[*cursor as usize] = v;
            *cursor += 1;
        }

        while self.workers.len() < threads {
            self.workers.push(Mutex::new(WorkerState::default()));
        }

        let n = self.rep.len();
        self.work.arena.clear();
        self.work.spans.clear();
        self.work.spans.resize(n, (0, 0));

        if threads == 1 {
            // Inline fast path: no locks, no barriers, no allocation once
            // the buffers are warm.
            let st = self.workers[0].get_mut().expect("worker mutex poisoned");
            for &(ls, le) in &self.level_ranges {
                let level = &self.level_order[ls as usize..le as usize];
                scan_chunk(parts.form, &self.csr, &self.work, level, st);
                commit_chunk(&mut self.work, level, st);
            }
        } else {
            let work = RwLock::new(std::mem::take(&mut self.work));
            let barrier = Barrier::new(threads);
            let level_ranges = &self.level_ranges;
            let level_order = &self.level_order;
            let workers = &self.workers;
            let csr = &self.csr;
            let form = parts.form;
            Pool::new(threads).broadcast(|w| {
                for &(ls, le) in level_ranges {
                    let level = &level_order[ls as usize..le as usize];
                    {
                        // Scan: every worker reads the frozen lower-level
                        // spans and writes only its own slot.
                        let frozen = work.read().expect("work lock poisoned");
                        let mut st = workers[w].lock().expect("worker mutex poisoned");
                        let (cs, ce) = chunk_range(level.len(), threads, w);
                        scan_chunk(form, csr, &frozen, &level[cs..ce], &mut st);
                    }
                    barrier.wait();
                    if w == 0 {
                        // Commit: worker 0 appends every chunk in worker
                        // order, reproducing the level's layout order.
                        let mut open = work.write().expect("work lock poisoned");
                        for (ww, worker) in workers.iter().enumerate().take(threads) {
                            let st = worker.lock().expect("worker mutex poisoned");
                            let (cs, ce) = chunk_range(level.len(), threads, ww);
                            commit_chunk(&mut open, &level[cs..ce], &st);
                        }
                    }
                    barrier.wait();
                }
            });
            self.work = work.into_inner().expect("work lock poisoned");
        }

        // Relayout into the sequential pass's exact arena order. Standard
        // form commits a span for every canonical variable (empty sets get
        // the degenerate `(k, k)`); inductive form leaves empty sets at
        // `(0, 0)`.
        self.final_arena.clear();
        self.final_spans.clear();
        self.final_spans.resize(n, (0, 0));
        for &v in &self.layout {
            let (s, e) = self.work.spans[v.index()];
            if e > s || matches!(parts.form, Form::Standard) {
                let start = u32::try_from(self.final_arena.len())
                    .expect("least-solution arena overflow");
                self.final_arena
                    .extend_from_slice(&self.work.arena[s as usize..e as usize]);
                self.final_spans[v.index()] = (start, start + (e - s));
            }
        }

        if let Some(rec) = rec {
            let set_vars = self.final_spans.iter().filter(|(s, e)| e > s).count();
            rec.set(Counter::LsSetVars, set_vars as u64);
            rec.set(Counter::LsEntries, self.final_arena.len() as u64);
            if let Some(t0) = t0 {
                rec.record_ns(Phase::ParLeast, t0.elapsed().as_nanos() as u64);
            }
        }
    }

    /// The solution computed by the last [`run`](ParLeast::run), as an owned
    /// [`LeastSolution`] (byte-identical to the sequential pass's).
    ///
    /// # Panics
    ///
    /// Panics (via the constructor's debug assertions) if called before any
    /// `run`.
    pub fn solution(&self) -> LeastSolution {
        LeastSolution::from_parts(
            self.rep.clone(),
            self.final_arena.clone(),
            self.final_spans.clone(),
        )
    }

    /// Number of condensation levels the last run evaluated.
    pub fn level_count(&self) -> usize {
        self.level_ranges.len()
    }
}

/// Evaluates `vars` (a slice of one level, in layout order) against the
/// frozen lower-level `work` state, appending each result set to `st.out`.
///
/// Reads only the frozen [`CsrSnapshot`] (canonical, sorted, distinct rows)
/// and the committed spans — never the live graph — so the whole scan is
/// pointer-chase-free streaming over flat arrays.
fn scan_chunk(
    form: Form,
    csr: &CsrSnapshot,
    work: &WorkBufs,
    vars: &[Var],
    st: &mut WorkerState,
) {
    let WorkerState { out, bounds, runs, acc, buf_b, bounds_a, bounds_b } = st;
    out.clear();
    bounds.clear();
    for &v in vars {
        let srcs = csr.srcs(v);
        let start = out.len() as u32;
        match form {
            Form::Standard => {
                // Standard form's sets are exactly the frozen source rows.
                out.extend_from_slice(srcs);
            }
            Form::Inductive => {
                runs.clear();
                for &u in csr.preds(v) {
                    let span = work.spans[u.index()];
                    if span.1 > span.0 {
                        runs.push(span);
                    }
                }
                let runs: &[(u32, u32)] = runs;
                match (srcs.is_empty(), runs) {
                    (true, []) => {}
                    (false, []) => out.extend_from_slice(srcs),
                    (true, &[(s, e)]) => {
                        out.extend_from_slice(&work.arena[s as usize..e as usize])
                    }
                    _ => {
                        // Iterated pairwise merging, same shape (and same
                        // shared primitive) as the sequential pass.
                        let extra = usize::from(!srcs.is_empty());
                        let total = runs.len() + extra;
                        let input = |i: usize| -> &[TermId] {
                            if i < extra {
                                srcs
                            } else {
                                let (s, e) = runs[i - extra];
                                &work.arena[s as usize..e as usize]
                            }
                        };
                        acc.clear();
                        bounds_a.clear();
                        let mut i = 0;
                        while i < total {
                            let run_start = acc.len() as u32;
                            if i + 1 < total {
                                merge_sorted_dedup(input(i), input(i + 1), acc);
                                i += 2;
                            } else {
                                acc.extend_from_slice(input(i));
                                i += 1;
                            }
                            bounds_a.push((run_start, acc.len() as u32));
                        }
                        while bounds_a.len() > 1 {
                            buf_b.clear();
                            bounds_b.clear();
                            let mut i = 0;
                            while i < bounds_a.len() {
                                let run_start = buf_b.len() as u32;
                                if i + 1 < bounds_a.len() {
                                    let (s1, e1) = bounds_a[i];
                                    let (s2, e2) = bounds_a[i + 1];
                                    merge_sorted_dedup(
                                        &acc[s1 as usize..e1 as usize],
                                        &acc[s2 as usize..e2 as usize],
                                        buf_b,
                                    );
                                    i += 2;
                                } else {
                                    let (s, e) = bounds_a[i];
                                    buf_b.extend_from_slice(&acc[s as usize..e as usize]);
                                    i += 1;
                                }
                                bounds_b.push((run_start, buf_b.len() as u32));
                            }
                            std::mem::swap(acc, buf_b);
                            std::mem::swap(bounds_a, bounds_b);
                        }
                        out.extend_from_slice(acc);
                    }
                }
            }
        }
        bounds.push((start, out.len() as u32));
    }
}

/// Appends a worker's scanned sets for `vars` to the shared arena, in chunk
/// order. Deterministic: pure concatenation, no reordering.
fn commit_chunk(work: &mut WorkBufs, vars: &[Var], st: &WorkerState) {
    debug_assert_eq!(st.bounds.len(), vars.len());
    for (i, &v) in vars.iter().enumerate() {
        let (s, e) = st.bounds[i];
        if e > s {
            let start =
                u32::try_from(work.arena.len()).expect("least-solution arena overflow");
            work.arena.extend_from_slice(&st.out[s as usize..e as usize]);
            work.spans[v.index()] = (start, start + (e - s));
        }
    }
}

/// One-shot convenience: the least solution of a solved `solver` computed on
/// `threads` workers. Byte-identical to [`Solver::least_solution`].
pub fn least_solution(solver: &Solver, threads: usize) -> LeastSolution {
    let mut par = ParLeast::new();
    par.run(&solver.least_parts(), threads, None);
    par.solution()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bane_core::solver::SolverConfig;
    use bane_util::SplitMix64;

    fn configs() -> [SolverConfig; 4] {
        [
            SolverConfig::sf_plain(),
            SolverConfig::if_plain(),
            SolverConfig::sf_online(),
            SolverConfig::if_online(),
        ]
    }

    /// Random layered constraint systems with cycles and sources.
    fn random_solver(config: SolverConfig, seed: u64) -> Solver {
        let mut rng = SplitMix64::new(seed);
        let mut s = Solver::new(config);
        let n = 60;
        let vs: Vec<Var> = (0..n).map(|_| s.fresh_var()).collect();
        let mut ts = Vec::new();
        for k in 0..8 {
            let c = s.register_nullary(format!("c{k}"));
            ts.push(s.term(c, vec![]));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.next_bool(0.05) {
                    s.add(vs[i], vs[j]);
                }
            }
        }
        // A few back edges to form cycles.
        for _ in 0..6 {
            let a = rng.next_below(n as u64) as usize;
            let b = rng.next_below(n as u64) as usize;
            s.add(vs[a], vs[b]);
        }
        for (k, &t) in ts.iter().enumerate() {
            s.add(t, vs[(k * 7) % n]);
        }
        s.solve();
        s
    }

    #[test]
    fn byte_identical_to_sequential_on_random_systems() {
        for config in configs() {
            for seed in 0..6u64 {
                let mut s = random_solver(config, seed);
                let seq = s.least_solution();
                for threads in [1, 2, 4, 8] {
                    let par = least_solution(&s, threads);
                    assert_eq!(par, seq, "{config:?} seed {seed} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn evaluator_is_reusable_across_runs_and_thread_counts() {
        let mut par = ParLeast::new();
        for seed in [3u64, 4] {
            let mut s = random_solver(SolverConfig::if_online(), seed);
            let seq = s.least_solution();
            for threads in [2, 1, 4] {
                par.run(&s.least_parts(), threads, None);
                assert_eq!(par.solution(), seq, "seed {seed} threads {threads}");
            }
            assert!(par.level_count() >= 1);
        }
    }

    #[test]
    fn empty_system_yields_empty_solution() {
        let mut s = Solver::new(SolverConfig::if_online());
        s.solve();
        let par = least_solution(&s, 4);
        assert_eq!(par, s.least_solution());
        assert!(par.is_empty());
    }

    #[test]
    fn records_observability_counters() {
        let mut s = random_solver(SolverConfig::if_online(), 1);
        let seq = s.least_solution();
        let rec = Recorder::new();
        let mut par = ParLeast::new();
        par.run(&s.least_parts(), 2, Some(&rec));
        assert_eq!(par.solution(), seq);
        assert_eq!(rec.get(Counter::LsEntries), seq.total_entries() as u64);
        let report = rec.report("par-least");
        assert!(report.phases.iter().any(|p| p.phase == Phase::ParLeast.name()));
    }
}
