//! The parallel **scan** half of the frontier engine: per-shard scratch and
//! the pure proposal function.
//!
//! During a round, every worker walks its [`chunk_range`](crate::pool::chunk_range)
//! of the frontier against the *frozen* round-start state (graph, forwarding
//! pointers, order) and records one [`Proposal`] per item. A proposal is a
//! pure function of `(frozen state, item)` — it does not depend on which
//! worker computed it, how the frontier was chunked, or in what order other
//! items were scanned. That is the first half of the engine's determinism
//! argument; the second half (the fixed-order commit that re-validates each
//! proposal against live state) lives in [`crate::commit`].

use bane_core::cycle::{ChainDir, ChainSearch, SearchMemo, SearchStats, StepOrder};
use bane_core::error::Inconsistency;
use bane_core::expr::SetExpr;
use bane_core::solver::{CycleElim, EngineParts, Form};
use bane_core::{TermId, Var};
use bane_core::cons::Variance;

/// What one frontier item resolved to against the frozen round-start state.
///
/// Variants carry *frozen* observations (canonical endpoints, a found cycle
/// path, derived constraints); the committer re-validates everything that
/// live state could have invalidated.
#[derive(Clone, Debug)]
pub(crate) enum Proposal {
    /// `0 ⊆ R` or `L ⊆ 1`: trivially true, nothing to do.
    Trivial,
    /// `x ⊆ x` after frozen canonicalization.
    SelfVar,
    /// A variable-variable edge, with the frozen cycle-search outcome:
    /// `path` is a range into the shard's flat path buffer when the frozen
    /// search closed a cycle.
    VarVar {
        /// Frozen-canonical left endpoint.
        x: Var,
        /// Frozen-canonical right endpoint.
        y: Var,
        /// Arena range of the found cycle path, if any.
        path: Option<(u32, u32)>,
    },
    /// A source edge `s ⋯→ y`.
    Src {
        /// The source term.
        s: TermId,
        /// Frozen-canonical target.
        y: Var,
    },
    /// A sink edge `x → t`.
    Snk {
        /// Frozen-canonical origin.
        x: Var,
        /// The sink term.
        t: TermId,
    },
    /// `s ⊆ t`: structural resolution. `derived` is a range into the
    /// shard's flat derived-constraint buffer; `error` carries an
    /// inconsistency; `resolved` is whether rule **R** fired.
    TermTerm {
        /// Arena range of derived argument constraints.
        derived: (u32, u32),
        /// Inconsistency detected structurally, if any.
        error: Option<Inconsistency>,
        /// Whether this counts as a resolution in the stats.
        resolved: bool,
    },
}

/// One worker's private round state: the proposals for its chunk plus the
/// flat side buffers they index into. Reused across rounds, so steady-state
/// scanning does not allocate.
#[derive(Debug, Default)]
pub(crate) struct ShardScratch {
    pub proposals: Vec<Proposal>,
    /// Flat storage for found cycle paths (`Proposal::VarVar::path`).
    pub paths: Vec<Var>,
    /// Flat storage for derived constraints (`Proposal::TermTerm::derived`).
    pub derived: Vec<(SetExpr, SetExpr)>,
    /// Scratch for a single search's path before it is flattened.
    pub path_tmp: Vec<Var>,
    pub search: ChainSearch,
    /// Negative-verdict memo for the frozen searches. This is where memo
    /// hits genuinely occur: duplicate frontier items within one round run
    /// the *same* search against the *same* frozen round-start graph, so a
    /// recorded verdict short-cuts the repeat while replaying byte-identical
    /// stats. Entries also survive into later rounds when the intervening
    /// commits bumped no relevant revision. Kept per shard (no sharing, no
    /// synchronization); replay exactness keeps the merged totals identical
    /// at every thread count.
    pub memo: SearchMemo,
    /// Search counters accumulated this round; drained into the engine's
    /// stats at commit (in shard order, so totals are deterministic).
    pub stats: SearchStats,
    /// Wall time of this shard's scan, nanoseconds (observability only).
    pub scan_ns: u64,
}

impl ShardScratch {
    /// Clears the per-round buffers (keeps capacity).
    pub fn begin_round(&mut self, graph_len: usize) {
        self.proposals.clear();
        self.paths.clear();
        self.derived.clear();
        self.search.grow(graph_len);
        self.scan_ns = 0;
    }
}

/// Scans one frontier item against the frozen state, returning its proposal.
///
/// Mirrors `Solver::process`'s normalization exactly: `0 ⊆ R` and `L ⊆ 1`
/// are trivial, remaining `1` sources and `0` sinks become the builtin
/// terms, and variables canonicalize through the (frozen) forwarding
/// pointers.
pub(crate) fn scan_item(
    parts: &EngineParts,
    lhs: SetExpr,
    rhs: SetExpr,
    st: &mut ShardScratch,
) -> Proposal {
    let lhs = match lhs {
        SetExpr::Zero => return Proposal::Trivial,
        SetExpr::One => SetExpr::Term(parts.one_term),
        SetExpr::Var(v) => SetExpr::Var(parts.fwd.find_const(v)),
        t @ SetExpr::Term(_) => t,
    };
    let rhs = match rhs {
        SetExpr::One => return Proposal::Trivial,
        SetExpr::Zero => SetExpr::Term(parts.zero_term),
        SetExpr::Var(v) => SetExpr::Var(parts.fwd.find_const(v)),
        t @ SetExpr::Term(_) => t,
    };
    match (lhs, rhs) {
        (SetExpr::Var(x), SetExpr::Var(y)) => scan_var_var(parts, x, y, st),
        (SetExpr::Term(s), SetExpr::Var(y)) => Proposal::Src { s, y },
        (SetExpr::Var(x), SetExpr::Term(t)) => Proposal::Snk { x, t },
        (SetExpr::Term(s), SetExpr::Term(t)) => scan_terms(parts, s, t, st),
        _ => unreachable!("normalization removed 0/1"),
    }
}

/// The variable-variable scan: frozen canonicalization, frozen redundancy
/// check, and — when the edge looks new — the frozen online cycle search.
fn scan_var_var(parts: &EngineParts, x: Var, y: Var, st: &mut ShardScratch) -> Proposal {
    if x == y {
        return Proposal::SelfVar;
    }
    let as_pred = match parts.config.form {
        Form::Standard => false,
        Form::Inductive => parts.order.lt(x, y),
    };
    let redundant = if as_pred {
        parts.graph.has_pred_var(y, x)
    } else {
        parts.graph.has_succ_var(x, y)
    };
    let mut path = None;
    if !redundant && parts.config.cycle_elim == CycleElim::Online {
        let found = frozen_search(parts, x, y, as_pred, st);
        if found {
            let start = st.paths.len() as u32;
            st.paths.extend_from_slice(&st.path_tmp);
            path = Some((start, st.paths.len() as u32));
        }
    }
    Proposal::VarVar { x, y, path }
}

/// Runs the same searches `Solver::var_var` would, against frozen state.
fn frozen_search(
    parts: &EngineParts,
    x: Var,
    y: Var,
    as_pred: bool,
    st: &mut ShardScratch,
) -> bool {
    let (graph, fwd, order) = (&parts.graph, &parts.fwd, &parts.order);
    let ShardScratch { search, memo, stats, path_tmp, .. } = st;
    if as_pred {
        // x ⋯→ y: look for a successor chain y → … → x.
        return memo.search(
            search,
            graph,
            fwd,
            order,
            y,
            x,
            ChainDir::Succ,
            StepOrder::Decreasing,
            stats,
            path_tmp,
        );
    }
    match parts.config.form {
        // x → y: look for a predecessor chain y ⋯→ … ⋯→ x.
        Form::Inductive => memo.search(
            search,
            graph,
            fwd,
            order,
            x,
            y,
            ChainDir::Pred,
            StepOrder::Decreasing,
            stats,
            path_tmp,
        ),
        // Standard form: successor chains y → … → x under the policy steps.
        Form::Standard => parts.config.sf_chain.steps().iter().any(|&step| {
            memo.search(
                search,
                graph,
                fwd,
                order,
                y,
                x,
                ChainDir::Succ,
                step,
                stats,
                path_tmp,
            )
        }),
    }
}

/// Structural resolution `s ⊆ t` (rule **R**), recorded rather than
/// applied. Terms are interned and immutable, so nothing here can go stale:
/// the committer replays the recorded outcome verbatim.
fn scan_terms(parts: &EngineParts, s: TermId, t: TermId, st: &mut ShardScratch) -> Proposal {
    let none = (st.derived.len() as u32, st.derived.len() as u32);
    if s == t || s == parts.zero_term || t == parts.one_term {
        return Proposal::TermTerm { derived: none, error: None, resolved: false };
    }
    if s == parts.one_term {
        return Proposal::TermTerm {
            derived: none,
            error: Some(Inconsistency::OneInTerm { rhs: t }),
            resolved: false,
        };
    }
    if t == parts.zero_term {
        return Proposal::TermTerm {
            derived: none,
            error: Some(Inconsistency::NonEmptyInZero { lhs: Some(s) }),
            resolved: false,
        };
    }
    let (sc, tc) = (parts.terms.data(s).con(), parts.terms.data(t).con());
    if sc != tc {
        return Proposal::TermTerm {
            derived: none,
            error: Some(Inconsistency::ConstructorMismatch { lhs: s, rhs: t }),
            resolved: false,
        };
    }
    let start = st.derived.len() as u32;
    let arity = parts.cons.signature(sc).arity();
    for i in 0..arity {
        let a = parts.terms.data(s).args()[i];
        let b = parts.terms.data(t).args()[i];
        match parts.cons.signature(sc).variances()[i] {
            Variance::Covariant => st.derived.push((a, b)),
            Variance::Contravariant => st.derived.push((b, a)),
        }
    }
    Proposal::TermTerm {
        derived: (start, st.derived.len() as u32),
        error: None,
        resolved: true,
    }
}
