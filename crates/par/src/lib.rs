//! Deterministic parallel execution engines for the bane constraint solver.
//!
//! The paper's solver is sequential; this crate adds parallelism **without
//! giving up reproducibility**. Both engines follow the same discipline —
//! *parallel proposal against frozen state, sequential commit in a fixed
//! order* — so every observable output (graphs, statistics including the
//! Work metric, inconsistency lists, least solutions down to the byte) is
//! identical at every thread count. The regression story stays intact: a
//! snapshot taken at `--threads 8` pins the same numbers as one taken
//! sequentially.
//!
//! Two engines:
//!
//! - [`ParLeast`] (module [`least`]): SCC-level-parallel least-solution
//!   evaluation. The inductive-form invariant makes the canonical
//!   predecessor graph a DAG; its condensation levels are dependency-free
//!   batches whose variables workers evaluate concurrently. Output is
//!   **byte-identical** to `Solver::least_solution` (the `LeastSolution`
//!   `PartialEq` compares raw buffers, so tests pin exactly that).
//! - [`FrontierSolver`] (module [`frontier`]): round-based frontier-batched
//!   closure. Workers scan disjoint chunks of the pending-constraint
//!   frontier against the frozen round-start state and *propose*; a
//!   sequential committer applies proposals in frontier order with
//!   epoch-validated cycle-search verdicts (the private `shard` and
//!   `commit` modules). Rounds are grouped into **batches** of up to `K`
//!   rounds per pool dispatch (the private `batch` module), amortizing
//!   spawn/join overhead without changing a single observable — and
//!   `CycleElim::Periodic` runs its offline sweeps at round boundaries
//!   inside the batch loop.
//!
//! Both engines implement `bane-core`'s `ConstraintBuilder`/`Engine` traits,
//! so harness code builds a `Problem` once and hands it to either engine via
//! `Engine::from_problem`.
//!
//! Worker scheduling is the deliberately boring [`pool`] module: scoped
//! threads, deterministic [`chunk_range`] partitioning, and a
//! single-threaded fast path that is a plain function call (and, once warm,
//! allocation-free — pinned by `bane-core`'s allocation test).
//!
//! See `docs/PARALLELISM.md` for the determinism argument and the
//! commit-order guarantee (including under `K > 1` batching), and
//! `BENCH_4.json` for measured scaling.

#![deny(missing_docs)]

mod batch;
mod commit;
mod shard;

pub mod frontier;
pub mod least;
pub mod pool;

pub use frontier::{BatchRounds, FrontierSolver};
pub use least::{least_solution, ParLeast, RevalidateOutcome};
pub use pool::{available_threads, chunk_range, Pool};
