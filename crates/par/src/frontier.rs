//! The deterministic frontier-batched closure engine.
//!
//! [`FrontierSolver`] resolves the same constraint systems as
//! `bane-core`'s [`Solver`] but schedules the worklist in **rounds**: the
//! current frontier of pending constraints is scanned *in parallel* against
//! the frozen round-start state (each worker proposing outcomes for its
//! [`chunk_range`] of items — the private `shard`
//! module), then the proposals are **committed sequentially in frontier
//! order** with epoch-validated re-checks (the private `commit` module).
//! Constraints derived by a commit form the next round's frontier.
//!
//! The engine is deterministic *across thread counts*: the frontier, the
//! proposals, the commit order, and therefore the final graph, the
//! statistics (including the paper's Work metric), the inconsistency list,
//! and the least solution are identical whether it runs on 1, 2, 4, or 8
//! threads — pinned by `tests/determinism.rs`. Note the *round* schedule
//! differs from the sequential solver's FIFO schedule, so stats that depend
//! on processing order (Work, searches) can differ from `Solver::solve`'s,
//! while the resolved graph semantics (finds, least solution,
//! inconsistency multiset) agree.

use bane_core::cycle::SearchStats;
use bane_core::error::Inconsistency;
use bane_core::expr::SetExpr;
use bane_core::graph::GraphCensus;
use bane_core::least::{LeastParts, LeastSolution};
use bane_core::solver::{CycleElim, EngineParts, Solver, SolverConfig};
use bane_core::stats::Stats;
use bane_core::cons::{Con, Variance};
use bane_core::{TermId, Var};
use bane_obs::{Counter, Phase, Recorder, RunReport};
use std::sync::Mutex;
use std::time::Instant;

use crate::commit::Committer;
use crate::least::ParLeast;
use crate::pool::{chunk_range, Pool};
use crate::shard::{scan_item, ShardScratch};

/// A parallel, deterministic constraint-resolution engine.
///
/// Construct one from a [`Solver`] carrying generated constraints (or build
/// constraints directly through the mirrored `register_*`/`term`/
/// `fresh_var`/`add` API), then call [`solve`](FrontierSolver::solve).
///
/// # Examples
///
/// ```
/// use bane_core::solver::SolverConfig;
/// use bane_par::FrontierSolver;
///
/// let mut f = FrontierSolver::new(SolverConfig::if_online(), 4);
/// let c = f.register_nullary("c");
/// let src = f.term(c, vec![]);
/// let (x, y) = (f.fresh_var(), f.fresh_var());
/// f.add(src, x);
/// f.add(x, y);
/// f.solve();
/// let ls = f.least_solution();
/// assert_eq!(ls.get(f.find(y)), &[src]);
/// ```
///
/// # Panics
///
/// Construction panics for [`CycleElim::Periodic`] configurations: the
/// periodic offline pass is keyed to the sequential solver's
/// constraint-count schedule and has no round-based counterpart.
#[derive(Debug)]
pub struct FrontierSolver {
    parts: EngineParts,
    threads: usize,
    frontier: Vec<(SetExpr, SetExpr)>,
    next: Vec<(SetExpr, SetExpr)>,
    shards: Vec<Mutex<ShardScratch>>,
    committer: Committer,
    par_least: ParLeast,
    rounds: u64,
    obs: Option<Box<Recorder>>,
}

impl FrontierSolver {
    /// A fresh engine with the given configuration on `threads` workers
    /// (clamped to at least 1).
    pub fn new(config: SolverConfig, threads: usize) -> Self {
        Self::from_solver(Solver::new(config), threads)
    }

    /// Takes over a solver's state (constraints may already be generated,
    /// even partially solved) and resolves the rest round-based.
    pub fn from_solver(solver: Solver, threads: usize) -> Self {
        Self::from_parts(solver.into_engine_parts(), threads)
    }

    /// Builds the engine directly from decomposed [`EngineParts`].
    pub fn from_parts(mut parts: EngineParts, threads: usize) -> Self {
        assert!(
            !matches!(parts.config.cycle_elim, CycleElim::Periodic { .. }),
            "FrontierSolver supports CycleElim::Off and CycleElim::Online only"
        );
        let threads = threads.max(1);
        let frontier: Vec<(SetExpr, SetExpr)> = parts.pending.drain(..).collect();
        FrontierSolver {
            parts,
            threads,
            frontier,
            next: Vec::new(),
            shards: (0..threads).map(|_| Mutex::new(ShardScratch::default())).collect(),
            committer: Committer::default(),
            par_least: ParLeast::new(),
            rounds: 0,
            obs: None,
        }
    }

    /// Number of worker threads the engine scans with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    // ------------------------------------------------------------------
    // Constraint building (mirrors the Solver API)
    // ------------------------------------------------------------------

    /// Registers a constructor with explicit argument variances.
    pub fn register_con(&mut self, name: impl Into<String>, variances: Vec<Variance>) -> Con {
        self.parts.cons.register(name, variances)
    }

    /// Registers a nullary (constant) constructor.
    pub fn register_nullary(&mut self, name: impl Into<String>) -> Con {
        self.parts.cons.register_nullary(name)
    }

    /// Interns the term `con(args…)`.
    pub fn term(&mut self, con: Con, args: Vec<SetExpr>) -> TermId {
        self.parts.terms.intern(&self.parts.cons, con, args)
    }

    /// Creates a fresh set variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = self.parts.graph.push_node();
        let f = self.parts.fwd.push();
        debug_assert_eq!(v, f);
        self.parts.order.assign(v);
        v
    }

    /// Adds the constraint `lhs ⊆ rhs` to the next frontier.
    pub fn add(&mut self, lhs: impl Into<SetExpr>, rhs: impl Into<SetExpr>) {
        self.parts.stats.constraints_added += 1;
        self.frontier.push((lhs.into(), rhs.into()));
    }

    // ------------------------------------------------------------------
    // Resolution
    // ------------------------------------------------------------------

    /// Resolves all pending constraints to closure, round by round.
    pub fn solve(&mut self) {
        while !self.frontier.is_empty() {
            self.rounds += 1;
            self.round();
        }
    }

    /// One scan/commit round over the current frontier.
    fn round(&mut self) {
        let epoch = self.parts.fwd.collapsed_count();
        let threads = self.threads;
        let len = self.frontier.len();
        let timing = self.obs.is_some();
        if let Some(rec) = self.obs.as_deref() {
            rec.add(Counter::ParRounds, 1);
            rec.add(Counter::ParProposals, len as u64);
        }
        let counters = self.obs.as_deref().map(|r| r.counters());

        // Scan: workers propose against the frozen round-start state.
        {
            let parts = &self.parts;
            let frontier = &self.frontier;
            let shards = &self.shards;
            let scan = |w: usize| {
                let mut st = shards[w].lock().expect("shard mutex poisoned");
                let st = &mut *st;
                let t0 = timing.then(Instant::now);
                st.begin_round(parts.graph.len());
                let (cs, ce) = chunk_range(len, threads, w);
                for &(lhs, rhs) in &frontier[cs..ce] {
                    let p = scan_item(parts, lhs, rhs, st);
                    st.proposals.push(p);
                }
                if let Some(t0) = t0 {
                    st.scan_ns = t0.elapsed().as_nanos() as u64;
                }
                if let Some(c) = counters {
                    c.add(Counter::ParShardScans, 1);
                }
            };
            Pool::new(threads).broadcast(scan);
        }

        // Commit: apply every shard's proposals in frontier order. The
        // chunk ranges concatenate to exactly `0..len`, so this sequence is
        // identical at every thread count.
        if let Some(rec) = self.obs.as_deref() {
            rec.start(Phase::ParCommit);
        }
        let mut committed = 0u64;
        self.committer.begin_round();
        for w in 0..threads {
            let st = self.shards[w].get_mut().expect("shard mutex poisoned");
            if let Some(rec) = self.obs.as_deref() {
                rec.record_ns(Phase::ParScan, st.scan_ns);
            }
            // Merge the shard's frozen-search counters in shard order; the
            // aggregate is the same set of searches at any thread count.
            merge_search(&mut self.parts.stats.search, &st.stats);
            st.stats = SearchStats::default();
            for i in 0..st.proposals.len() {
                self.committer.apply(
                    &mut self.parts,
                    &st.proposals[i],
                    &st.paths,
                    &st.derived,
                    &mut self.next,
                    epoch,
                );
                committed += 1;
            }
        }
        if let Some(rec) = self.obs.as_deref() {
            rec.stop(Phase::ParCommit);
            rec.add(Counter::ParCommits, committed);
        }

        std::mem::swap(&mut self.frontier, &mut self.next);
        self.next.clear();
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// The representative of `v` after collapses (with path compression).
    pub fn find(&mut self, v: Var) -> Var {
        self.parts.fwd.find(v)
    }

    /// Accumulated statistics (deterministic across thread counts).
    pub fn stats(&self) -> &Stats {
        &self.parts.stats
    }

    /// Inconsistencies recorded during resolution.
    pub fn inconsistencies(&self) -> &[Inconsistency] {
        &self.parts.errors
    }

    /// Distinct canonical edge counts of the solved graph.
    pub fn census(&self) -> GraphCensus {
        self.parts.graph.census(&self.parts.fwd)
    }

    /// Live (non-collapsed) variable count.
    pub fn live_vars(&self) -> usize {
        self.parts.fwd.reps().count()
    }

    /// Number of variable nodes ever created.
    pub fn graph_len(&self) -> usize {
        self.parts.graph.len()
    }

    /// The least solution of the solved system, computed by the
    /// SCC-level-parallel evaluator on this engine's thread count.
    /// Byte-identical to the sequential pass over the same graph.
    pub fn least_solution(&mut self) -> LeastSolution {
        let parts = LeastParts {
            graph: &self.parts.graph,
            fwd: &self.parts.fwd,
            order: &self.parts.order,
            form: self.parts.config.form,
        };
        self.par_least.run(&parts, self.threads, self.obs.as_deref());
        self.par_least.solution()
    }

    /// Decomposes the engine back into its parts (e.g. to continue on a
    /// sequential solver path or inspect the raw graph).
    pub fn into_parts(self) -> EngineParts {
        self.parts
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Turns on observability recording (idempotent).
    pub fn enable_obs(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(Box::new(Recorder::new()));
        }
    }

    /// The active recorder, if [`enable_obs`](FrontierSolver::enable_obs)
    /// was called.
    pub fn obs(&self) -> Option<&Recorder> {
        self.obs.as_deref()
    }

    /// Publishes the engine's stats into the counter registry and snapshots
    /// a labeled [`RunReport`]. Returns `None` without
    /// [`enable_obs`](FrontierSolver::enable_obs).
    pub fn run_report(&mut self, label: &str) -> Option<RunReport> {
        let census = self.census();
        let live = self.live_vars();
        let rec = self.obs.as_deref()?;
        let s = &self.parts.stats;
        rec.set(Counter::ConstraintsAdded, s.constraints_added);
        rec.set(Counter::ConstraintsProcessed, s.constraints_processed);
        rec.set(Counter::ConstraintsTerm, s.term_constraints);
        rec.set(Counter::ConstraintsSelf, s.self_constraints);
        rec.set(Counter::WorkTotal, s.work);
        rec.set(Counter::WorkRedundant, s.redundant);
        rec.set(Counter::WorkResolutions, s.resolutions);
        rec.set(Counter::SearchCount, s.search.searches);
        rec.set(Counter::SearchNodesVisited, s.search.nodes_visited);
        rec.set(Counter::SearchEdgesScanned, s.search.edges_scanned);
        rec.set(Counter::SearchMaxVisits, s.search.max_visits);
        rec.set(Counter::CycleFound, s.search.cycles_found);
        rec.set(Counter::CycleCollapsed, s.cycles_collapsed);
        rec.set(Counter::CycleVarsEliminated, s.vars_eliminated);
        rec.set(Counter::ErrorsInconsistencies, s.inconsistencies);
        rec.set(Counter::CensusEdges, census.total_edges() as u64);
        rec.set(Counter::CensusLiveVars, live as u64);
        Some(rec.report(label))
    }
}

/// Sums `from` into `into` (component-wise; `max_visits` by maximum).
fn merge_search(into: &mut SearchStats, from: &SearchStats) {
    into.searches += from.searches;
    into.nodes_visited += from.nodes_visited;
    into.edges_scanned += from.edges_scanned;
    into.cycles_found += from.cycles_found;
    into.max_visits = into.max_visits.max(from.max_visits);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bane_core::solver::Form;

    fn engine_configs() -> [SolverConfig; 4] {
        [
            SolverConfig::sf_plain(),
            SolverConfig::if_plain(),
            SolverConfig::sf_online(),
            SolverConfig::if_online(),
        ]
    }

    #[test]
    fn transitive_source_propagation() {
        for config in engine_configs() {
            for threads in [1, 3] {
                let mut f = FrontierSolver::new(config, threads);
                let c = f.register_nullary("c");
                let src = f.term(c, vec![]);
                let (x, y) = (f.fresh_var(), f.fresh_var());
                f.add(src, x);
                f.add(x, y);
                f.solve();
                let yr = f.find(y);
                let ls = f.least_solution();
                assert_eq!(ls.get(yr), &[src], "{config:?} threads {threads}");
                assert!(f.rounds() >= 2);
            }
        }
    }

    #[test]
    fn two_cycle_collapses_online() {
        for config in [SolverConfig::sf_online(), SolverConfig::if_online()] {
            let mut f = FrontierSolver::new(config, 2);
            let (x, y) = (f.fresh_var(), f.fresh_var());
            f.add(x, y);
            f.add(y, x);
            f.solve();
            assert_eq!(f.find(x), f.find(y), "{config:?}");
            assert_eq!(f.stats().cycles_collapsed, 1, "{config:?}");
            assert_eq!(f.stats().vars_eliminated, 1, "{config:?}");
        }
    }

    #[test]
    fn variance_decomposition_matches_solver() {
        for threads in [1, 4] {
            let mut f = FrontierSolver::new(SolverConfig::if_online(), threads);
            let c = f.register_nullary("c");
            let fc = f.register_con("f", vec![Variance::Covariant, Variance::Contravariant]);
            let csrc = f.term(c, vec![]);
            let (a, b, p, q, mid) =
                (f.fresh_var(), f.fresh_var(), f.fresh_var(), f.fresh_var(), f.fresh_var());
            let src = f.term(fc, vec![a.into(), b.into()]);
            let snk = f.term(fc, vec![p.into(), q.into()]);
            f.add(src, mid);
            f.add(mid, snk);
            let c2 = f.register_nullary("c2");
            let c2src = f.term(c2, vec![]);
            f.add(csrc, a);
            f.add(c2src, q);
            f.solve();
            assert!(f.inconsistencies().is_empty());
            let (pr, br) = (f.find(p), f.find(b));
            let ls = f.least_solution();
            assert_eq!(ls.get(pr), &[csrc], "covariant, threads {threads}");
            assert_eq!(ls.get(br), &[c2src], "contravariant, threads {threads}");
        }
    }

    #[test]
    fn inconsistencies_are_recorded() {
        let mut f = FrontierSolver::new(SolverConfig::if_online(), 2);
        let c = f.register_nullary("c");
        let d = f.register_nullary("d");
        let (csrc, dsnk) = (f.term(c, vec![]), f.term(d, vec![]));
        let x = f.fresh_var();
        f.add(csrc, x);
        f.add(x, dsnk);
        f.solve();
        assert_eq!(f.inconsistencies().len(), 1);
        assert!(matches!(
            f.inconsistencies()[0],
            Inconsistency::ConstructorMismatch { .. }
        ));
    }

    #[test]
    fn takes_over_partially_solved_solver() {
        let mut s = Solver::new(SolverConfig::if_online());
        let c = s.register_nullary("c");
        let src = s.term(c, vec![]);
        let (x, y) = (s.fresh_var(), s.fresh_var());
        s.add(src, x);
        s.solve();
        s.add(x, y);
        let mut f = FrontierSolver::from_solver(s, 2);
        f.solve();
        let yr = f.find(y);
        let ls = f.least_solution();
        assert_eq!(ls.get(yr), &[src]);
    }

    #[test]
    #[should_panic(expected = "CycleElim::Off and CycleElim::Online only")]
    fn periodic_configs_are_rejected() {
        let config = SolverConfig {
            cycle_elim: CycleElim::Periodic { interval: 8 },
            ..SolverConfig::if_plain()
        };
        let _ = FrontierSolver::new(config, 2);
    }

    #[test]
    fn run_report_covers_par_counters() {
        let mut f = FrontierSolver::new(SolverConfig::if_online(), 2);
        f.enable_obs();
        f.enable_obs(); // idempotent
        let (x, y, z) = (f.fresh_var(), f.fresh_var(), f.fresh_var());
        f.add(x, y);
        f.add(y, z);
        f.add(z, x);
        f.solve();
        let _ = f.least_solution();
        let report = f.run_report("frontier").expect("obs enabled");
        assert_eq!(report.counter("par.rounds"), Some(f.rounds()));
        assert!(report.counter("par.commits").unwrap_or(0) >= 3);
        assert!(report.counter("par.shard-scans").unwrap_or(0) >= f.rounds());
        assert!(report.phases.iter().any(|p| p.phase == Phase::ParCommit.name()));
        assert!(report.phases.iter().any(|p| p.phase == Phase::ParScan.name()));
        assert!(report.phases.iter().any(|p| p.phase == Phase::ParLeast.name()));
        assert!(f.obs().is_some());
        assert_eq!(f.stats().constraints_added, 3);
        let parts = f.into_parts();
        assert_eq!(parts.config.form, Form::Inductive);
    }
}
