//! The deterministic frontier-batched closure engine.
//!
//! [`FrontierSolver`] resolves the same constraint systems as
//! `bane-core`'s [`Solver`] but schedules the worklist in **rounds**: the
//! current frontier of pending constraints is scanned *in parallel* against
//! the frozen round-start state (each worker proposing outcomes for its
//! [`chunk_range`](crate::chunk_range) of items — the private `shard`
//! module), then the proposals are **committed sequentially in frontier
//! order** with epoch-validated re-checks (the private `commit` module).
//! Constraints derived by a commit form the next round's frontier.
//!
//! Rounds are grouped into **batches** of up to `K` rounds
//! ([`set_batch_rounds`](FrontierSolver::set_batch_rounds)), each batch
//! running inside a single pool dispatch so thread spawn/join cost is paid
//! once per batch instead of once per round — the private `batch` module
//! documents the in-pool protocol. Per-round semantics are identical at
//! every `K`.
//!
//! The engine is deterministic *across thread counts and batch sizes*: the
//! frontier, the proposals, the commit order, and therefore the final graph,
//! the statistics (including the paper's Work metric), the inconsistency
//! list, and the least solution are identical whether it runs on 1, 2, 4, or
//! 8 threads, batched or not — pinned by `tests/determinism.rs`. Note the
//! *round* schedule differs from the sequential solver's FIFO schedule, so
//! stats that depend on processing order (Work, searches) can differ from
//! `Solver::solve`'s, while the resolved graph semantics (finds, least
//! solution, inconsistency multiset) agree.
//!
//! All `CycleElim` modes are supported. `Off` and `Online` behave as in the
//! sequential solver; [`CycleElim::Periodic`] runs offline Tarjan sweeps at
//! round boundaries whenever `constraints_processed` crosses the interval
//! schedule — the round-granularity analogue of the sequential solver's
//! per-constraint check, and like everything else independent of thread
//! count and `K`.

use bane_core::cons::{Con, Variance};
use bane_core::engine::Engine;
use bane_core::error::Inconsistency;
use bane_core::expr::SetExpr;
use bane_core::graph::GraphCensus;
use bane_core::least::{LeastParts, LeastSolution};
use bane_core::problem::{ConstraintBuilder, Problem};
use bane_core::solver::{CycleElim, EngineParts, Solver, SolverConfig};
use bane_core::stats::Stats;
use bane_core::{TermId, Var};
use bane_obs::{Counter, Phase, Recorder, RunReport};
use std::sync::Mutex;
use std::time::Instant;

use crate::batch::{run_batch, BatchArgs};
use crate::commit::Committer;
use crate::least::ParLeast;
use crate::shard::ShardScratch;

/// Frontier sizes at or below this reward deeper batching: a round this
/// small is dominated by dispatch overhead, so [`BatchRounds::Auto`] grows
/// `K` while every committed round in a batch stays within it.
pub const AUTO_SMALL_ROUND: usize = 32;

/// Upper bound on the `K` [`BatchRounds::Auto`] will grow to.
pub const AUTO_MAX_BATCH_ROUNDS: usize = 64;

/// How many rounds one pool dispatch (batch) may run.
///
/// Every observable output — stats, census, inconsistencies, the least
/// solution, even the round sequence — is independent of `K` (pinned by the
/// determinism tests), so the policy is purely an overhead dial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchRounds {
    /// Batch exactly `K` rounds per dispatch (clamped to at least 1;
    /// 1 restores unbatched behavior).
    Fixed(usize),
    /// Adapt per batch: start unbatched, then double `K` (capped at
    /// [`AUTO_MAX_BATCH_ROUNDS`]) after every batch whose committed rounds
    /// all stayed at or below [`AUTO_SMALL_ROUND`] frontier items — the
    /// regime where dispatch overhead dominates. A batch that commits a
    /// wider round resets `K` to 1, keeping large frontiers responsive to
    /// the parallel scan.
    Auto,
}

impl From<usize> for BatchRounds {
    fn from(k: usize) -> Self {
        BatchRounds::Fixed(k.max(1))
    }
}

/// A parallel, deterministic constraint-resolution engine.
///
/// Construct one from a [`Solver`] carrying generated constraints, from a
/// recorded [`Problem`] via [`Engine::from_problem`], or empty via
/// [`new`](FrontierSolver::new) — then build constraints through the
/// [`ConstraintBuilder`] trait and resolve through the [`Engine`] trait.
///
/// # Examples
///
/// ```
/// use bane_core::prelude::*;
/// use bane_par::FrontierSolver;
///
/// let mut p = Problem::new(SolverConfig::if_online());
/// let c = p.register_nullary("c");
/// let src = p.term(c, vec![]);
/// let (x, y) = (p.fresh_var(), p.fresh_var());
/// p.add(src, x);
/// p.add(x, y);
///
/// let mut f = FrontierSolver::from_problem(p);
/// f.set_threads(4);
/// f.set_batch_rounds(8);
/// f.solve();
/// let ls = f.least_solution();
/// assert_eq!(ls.get(f.find(y)), &[src]);
/// ```
#[derive(Debug)]
pub struct FrontierSolver {
    parts: EngineParts,
    threads: usize,
    batch_rounds: BatchRounds,
    /// The effective `K` of the next batch under [`BatchRounds::Auto`]
    /// (always 1 under `Fixed`, where it is unused).
    auto_k: usize,
    frontier: Vec<(SetExpr, SetExpr)>,
    next: Vec<(SetExpr, SetExpr)>,
    shards: Vec<Mutex<ShardScratch>>,
    committer: Committer,
    par_least: ParLeast,
    rounds: u64,
    batches: u64,
    next_sweep_at: u64,
    obs: Option<Box<Recorder>>,
}

impl FrontierSolver {
    /// A fresh engine with the given configuration on `threads` workers
    /// (clamped to at least 1).
    pub fn new(config: SolverConfig, threads: usize) -> Self {
        Self::from_solver(Solver::new(config), threads)
    }

    /// Takes over a solver's state (constraints may already be generated,
    /// even partially solved) and resolves the rest round-based.
    pub fn from_solver(solver: Solver, threads: usize) -> Self {
        Self::from_parts(solver.into_engine_parts(), threads)
    }

    /// Builds the engine directly from decomposed [`EngineParts`].
    pub fn from_parts(mut parts: EngineParts, threads: usize) -> Self {
        let threads = threads.max(1);
        let frontier: Vec<(SetExpr, SetExpr)> = parts.pending.drain(..).collect();
        // The periodic schedule continues from wherever the previous engine
        // left off: the next interval boundary above `constraints_processed`.
        let next_sweep_at = match parts.config.cycle_elim {
            CycleElim::Periodic { interval } => {
                let interval = interval.max(1) as u64;
                (parts.stats.constraints_processed / interval + 1) * interval
            }
            _ => u64::MAX,
        };
        FrontierSolver {
            parts,
            threads,
            batch_rounds: BatchRounds::Fixed(1),
            auto_k: 1,
            frontier,
            next: Vec::new(),
            shards: (0..threads).map(|_| Mutex::new(ShardScratch::default())).collect(),
            committer: Committer::default(),
            par_least: ParLeast::new(),
            rounds: 0,
            batches: 0,
            next_sweep_at,
            obs: None,
        }
    }

    /// Number of worker threads the engine scans with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Re-targets the engine to `threads` workers (clamped to at least 1).
    ///
    /// Safe at any point between batches; every observable output is
    /// independent of the thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
        self.shards
            .resize_with(self.threads, || Mutex::new(ShardScratch::default()));
    }

    /// Maximum rounds the *next* batch may run (`K`): the fixed value, or
    /// the current adaptive `K` under [`BatchRounds::Auto`].
    pub fn batch_rounds(&self) -> usize {
        match self.batch_rounds {
            BatchRounds::Fixed(k) => k.max(1),
            BatchRounds::Auto => self.auto_k,
        }
    }

    /// The batching policy in effect.
    pub fn batch_policy(&self) -> BatchRounds {
        self.batch_rounds
    }

    /// Sets how many rounds one batch may run inside a single pool
    /// dispatch: a plain `usize` for a fixed `K` (1 restores unbatched
    /// behavior), or [`BatchRounds::Auto`] to let the engine grow `K`
    /// while committed rounds stay small. Resets the adaptive state.
    ///
    /// Batching only amortizes dispatch overhead — every observable output
    /// is independent of `K`, fixed or adaptive.
    pub fn set_batch_rounds(&mut self, batch_rounds: impl Into<BatchRounds>) {
        self.batch_rounds = batch_rounds.into();
        self.auto_k = 1;
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Batches (pool dispatches) executed so far. Equal to
    /// [`rounds`](FrontierSolver::rounds) at `K = 1`; strictly smaller once
    /// batching takes effect.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    // ------------------------------------------------------------------
    // Resolution
    // ------------------------------------------------------------------

    /// The shared solve loop: batches until the frontier drains or the work
    /// bound trips. Returns whether resolution finished.
    fn run(&mut self, max_work: u64) -> bool {
        while !self.frontier.is_empty() {
            if self.batch(max_work) {
                // Mirrors `Solver::solve_limited`: exceeding the bound
                // reports unfinished even if that round drained the frontier.
                return false;
            }
        }
        true
    }

    /// Runs one batch of up to `batch_rounds` rounds in a single pool
    /// dispatch, then replays the captured phase timings into the recorder
    /// (the timer half of the recorder is thread-local and cannot cross
    /// into the pool). Returns whether the work bound was exceeded.
    fn batch(&mut self, max_work: u64) -> bool {
        let timing = self.obs.is_some();
        let counters = self.obs.as_deref().map(|r| r.counters());
        let t0 = timing.then(Instant::now);
        let batch_rounds = self.batch_rounds();
        let outcome = run_batch(BatchArgs {
            parts: &mut self.parts,
            frontier: &mut self.frontier,
            next: &mut self.next,
            shards: &self.shards,
            committer: &mut self.committer,
            threads: self.threads,
            batch_rounds,
            max_work,
            next_sweep_at: &mut self.next_sweep_at,
            counters,
            timing,
        });
        self.rounds += outcome.rounds_run;
        self.batches += 1;
        if let BatchRounds::Auto = self.batch_rounds {
            // Deepen while every committed round stayed small (dispatch
            // overhead dominates); reset on a wide round so large frontiers
            // go back to one parallel scan per dispatch. `K` only affects
            // how rounds are grouped, never what any round computes.
            self.auto_k = if outcome.max_round_len <= AUTO_SMALL_ROUND {
                (self.auto_k * 2).min(AUTO_MAX_BATCH_ROUNDS)
            } else {
                1
            };
        }
        if let Some(rec) = self.obs.as_deref() {
            rec.add(Counter::ParCommitBroadcasts, 1);
            if outcome.ran_full {
                rec.add(Counter::ParBatchFull, 1);
            }
            for &ns in &outcome.telemetry.scan_ns {
                rec.record_ns(Phase::ParScan, ns);
            }
            for &ns in &outcome.telemetry.commit_ns {
                rec.record_ns(Phase::ParCommit, ns);
            }
            for &ns in &outcome.telemetry.sweep_ns {
                rec.record_ns(Phase::OfflinePass, ns);
            }
            if let Some(t0) = t0 {
                rec.record_ns(Phase::ParBatch, t0.elapsed().as_nanos() as u64);
            }
        }
        outcome.work_exceeded
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// Live (non-collapsed) variable count.
    pub fn live_vars(&self) -> usize {
        self.parts.fwd.reps().count()
    }

    /// Number of variable nodes ever created.
    pub fn graph_len(&self) -> usize {
        self.parts.graph.len()
    }

    /// Decomposes the engine back into its parts (e.g. to continue on a
    /// sequential solver path or inspect the raw graph).
    pub fn into_parts(self) -> EngineParts {
        self.parts
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Turns on observability recording (idempotent).
    pub fn enable_obs(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(Box::new(Recorder::new()));
        }
    }

    /// The active recorder, if [`enable_obs`](FrontierSolver::enable_obs)
    /// was called.
    pub fn obs(&self) -> Option<&Recorder> {
        self.obs.as_deref()
    }

    /// Cumulative `(hits, misses)` across the scan-phase (per-shard) and
    /// commit-phase negative-search memos. Unlike every [`Stats`] field,
    /// these counts are *telemetry*, not paper observables: which duplicate
    /// frontier items share a shard depends on the chunking, so the split
    /// between hits and misses may vary with the thread count even though
    /// the replayed search stats are byte-identical.
    pub fn search_memo_counts(&self) -> (u64, u64) {
        let (mut hits, mut misses) = self.committer.memo_counts();
        for shard in &self.shards {
            let s = shard.lock().unwrap();
            hits += s.memo.hits();
            misses += s.memo.misses();
        }
        (hits, misses)
    }

    /// Enables or disables negative-search memoization in every shard and
    /// the committer (on by default; purely an operational kill switch —
    /// all paper observables are identical either way).
    pub fn set_search_memo_enabled(&mut self, enabled: bool) {
        self.committer.set_memo_enabled(enabled);
        for shard in &self.shards {
            shard.lock().unwrap().memo.set_enabled(enabled);
        }
    }

    /// Physical epoch wraparound resets across every search scratch the
    /// engine owns (shards, committer, sweep). Feeds `epoch.resets`.
    pub fn epoch_resets(&self) -> u64 {
        let mut resets = self.committer.epoch_resets();
        for shard in &self.shards {
            resets += shard.lock().unwrap().search.epoch_resets();
        }
        resets
    }

    /// Publishes the engine's stats into the counter registry and snapshots
    /// a labeled [`RunReport`]. Returns `None` without
    /// [`enable_obs`](FrontierSolver::enable_obs).
    pub fn run_report(&mut self, label: &str) -> Option<RunReport> {
        let census = self.parts.graph.census(&self.parts.fwd);
        let live = self.live_vars();
        let (memo_hits, memo_misses) = self.search_memo_counts();
        let epoch_resets = self.epoch_resets();
        let rec = self.obs.as_deref()?;
        let s = &self.parts.stats;
        rec.set(Counter::ConstraintsAdded, s.constraints_added);
        rec.set(Counter::ConstraintsProcessed, s.constraints_processed);
        rec.set(Counter::ConstraintsTerm, s.term_constraints);
        rec.set(Counter::ConstraintsSelf, s.self_constraints);
        rec.set(Counter::WorkTotal, s.work);
        rec.set(Counter::WorkRedundant, s.redundant);
        rec.set(Counter::WorkResolutions, s.resolutions);
        rec.set(Counter::SearchCount, s.search.searches);
        rec.set(Counter::SearchNodesVisited, s.search.nodes_visited);
        rec.set(Counter::SearchEdgesScanned, s.search.edges_scanned);
        rec.set(Counter::SearchMaxVisits, s.search.max_visits);
        rec.set(Counter::CycleFound, s.search.cycles_found);
        rec.set(Counter::CycleCollapsed, s.cycles_collapsed);
        rec.set(Counter::CycleVarsEliminated, s.vars_eliminated);
        rec.set(Counter::ErrorsInconsistencies, s.inconsistencies);
        rec.set(Counter::CensusEdges, census.total_edges() as u64);
        rec.set(Counter::CensusLiveVars, live as u64);
        rec.set(Counter::SearchMemoHit, memo_hits);
        rec.set(Counter::SearchMemoMiss, memo_misses);
        rec.set(Counter::EpochResets, epoch_resets);
        Some(rec.report(label))
    }
}

impl ConstraintBuilder for FrontierSolver {
    fn register_con(&mut self, name: impl Into<String>, variances: Vec<Variance>) -> Con {
        self.parts.cons.register(name, variances)
    }

    fn register_nullary(&mut self, name: impl Into<String>) -> Con {
        self.parts.cons.register_nullary(name)
    }

    fn term(&mut self, con: Con, args: Vec<SetExpr>) -> TermId {
        self.parts.terms.intern(&self.parts.cons, con, args)
    }

    fn fresh_var(&mut self) -> Var {
        let v = self.parts.graph.push_node();
        let f = self.parts.fwd.push();
        debug_assert_eq!(v, f);
        self.parts.order.assign(v);
        v
    }

    fn add(&mut self, lhs: impl Into<SetExpr>, rhs: impl Into<SetExpr>) {
        self.parts.stats.constraints_added += 1;
        self.frontier.push((lhs.into(), rhs.into()));
    }
}

impl Engine for FrontierSolver {
    /// Adopts a recorded [`Problem`] on 1 thread with `K = 1`; re-target
    /// with [`set_threads`](FrontierSolver::set_threads) and
    /// [`set_batch_rounds`](FrontierSolver::set_batch_rounds) — neither
    /// changes any observable output.
    fn from_problem(problem: Problem) -> Self {
        Self::from_solver(Solver::from_problem(problem), 1)
    }

    fn solve(&mut self) {
        let finished = self.run(u64::MAX);
        debug_assert!(finished);
    }

    fn solve_limited(&mut self, max_work: u64) -> bool {
        self.run(max_work)
    }

    fn stats(&self) -> &Stats {
        &self.parts.stats
    }

    fn inconsistencies(&self) -> &[Inconsistency] {
        &self.parts.errors
    }

    fn census(&self) -> GraphCensus {
        self.parts.graph.census(&self.parts.fwd)
    }

    fn find(&mut self, v: Var) -> Var {
        self.parts.fwd.find(v)
    }

    fn least_solution(&mut self) -> LeastSolution {
        let parts = LeastParts {
            graph: &self.parts.graph,
            fwd: &self.parts.fwd,
            order: &self.parts.order,
            form: self.parts.config.form,
        };
        let kind = self.parts.config.solset;
        if kind == bane_core::solset::SolSetKind::SortedSpan {
            self.par_least.run(&parts, self.threads, self.obs.as_deref());
        } else {
            // Non-default backends ride the difference-propagating path:
            // repeated least-solution calls over a grown frontier system
            // re-merge only deltas (bytes stay identical either way).
            self.par_least
                .run_with(&parts, self.threads, kind, true, self.obs.as_deref());
        }
        self.par_least.solution()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bane_core::solver::Form;

    fn engine_configs() -> [SolverConfig; 4] {
        [
            SolverConfig::sf_plain(),
            SolverConfig::if_plain(),
            SolverConfig::sf_online(),
            SolverConfig::if_online(),
        ]
    }

    /// `c ⊆ x ⊆ y` through any builder (generic ⇒ trait methods, no
    /// deprecation).
    fn build_chain<B: ConstraintBuilder>(f: &mut B) -> (TermId, Var) {
        let c = f.register_nullary("c");
        let src = f.term(c, vec![]);
        let (x, y) = (f.fresh_var(), f.fresh_var());
        f.add(src, x);
        f.add(x, y);
        (src, y)
    }

    #[test]
    fn transitive_source_propagation() {
        for config in engine_configs() {
            for threads in [1, 3] {
                let mut f = FrontierSolver::new(config, threads);
                let (src, y) = build_chain(&mut f);
                Engine::solve(&mut f);
                let yr = Engine::find(&mut f, y);
                let ls = Engine::least_solution(&mut f);
                assert_eq!(ls.get(yr), &[src], "{config:?} threads {threads}");
                assert!(f.rounds() >= 2);
                assert_eq!(f.batches(), f.rounds(), "K = 1: one dispatch per round");
            }
        }
    }

    #[test]
    fn two_cycle_collapses_online() {
        for config in [SolverConfig::sf_online(), SolverConfig::if_online()] {
            let mut f = FrontierSolver::new(config, 2);
            let (x, y) = (
                ConstraintBuilder::fresh_var(&mut f),
                ConstraintBuilder::fresh_var(&mut f),
            );
            ConstraintBuilder::add(&mut f, x, y);
            ConstraintBuilder::add(&mut f, y, x);
            Engine::solve(&mut f);
            assert_eq!(Engine::find(&mut f, x), Engine::find(&mut f, y), "{config:?}");
            assert_eq!(Engine::stats(&f).cycles_collapsed, 1, "{config:?}");
            assert_eq!(Engine::stats(&f).vars_eliminated, 1, "{config:?}");
        }
    }

    fn build_variance<B: ConstraintBuilder>(f: &mut B) -> (TermId, TermId, Var, Var) {
        let c = f.register_nullary("c");
        let fc = f.register_con("f", vec![Variance::Covariant, Variance::Contravariant]);
        let csrc = f.term(c, vec![]);
        let (a, b, p, q, mid) =
            (f.fresh_var(), f.fresh_var(), f.fresh_var(), f.fresh_var(), f.fresh_var());
        let src = f.term(fc, vec![a.into(), b.into()]);
        let snk = f.term(fc, vec![p.into(), q.into()]);
        f.add(src, mid);
        f.add(mid, snk);
        let c2 = f.register_nullary("c2");
        let c2src = f.term(c2, vec![]);
        f.add(csrc, a);
        f.add(c2src, q);
        (csrc, c2src, p, b)
    }

    #[test]
    fn variance_decomposition_matches_solver() {
        for threads in [1, 4] {
            let mut f = FrontierSolver::new(SolverConfig::if_online(), threads);
            let (csrc, c2src, p, b) = build_variance(&mut f);
            Engine::solve(&mut f);
            assert!(Engine::inconsistencies(&f).is_empty());
            let (pr, br) = (Engine::find(&mut f, p), Engine::find(&mut f, b));
            let ls = Engine::least_solution(&mut f);
            assert_eq!(ls.get(pr), &[csrc], "covariant, threads {threads}");
            assert_eq!(ls.get(br), &[c2src], "contravariant, threads {threads}");
        }
    }

    #[test]
    fn inconsistencies_are_recorded() {
        let mut f = FrontierSolver::new(SolverConfig::if_online(), 2);
        let c = ConstraintBuilder::register_nullary(&mut f, "c");
        let d = ConstraintBuilder::register_nullary(&mut f, "d");
        let csrc = ConstraintBuilder::term(&mut f, c, vec![]);
        let dsnk = ConstraintBuilder::term(&mut f, d, vec![]);
        let x = ConstraintBuilder::fresh_var(&mut f);
        ConstraintBuilder::add(&mut f, csrc, x);
        ConstraintBuilder::add(&mut f, x, dsnk);
        Engine::solve(&mut f);
        assert_eq!(Engine::inconsistencies(&f).len(), 1);
        assert!(matches!(
            Engine::inconsistencies(&f)[0],
            Inconsistency::ConstructorMismatch { .. }
        ));
    }

    #[test]
    fn takes_over_partially_solved_solver() {
        let mut s = Solver::new(SolverConfig::if_online());
        let c = s.register_nullary("c");
        let src = s.term(c, vec![]);
        let (x, y) = (s.fresh_var(), s.fresh_var());
        s.add(src, x);
        s.solve();
        s.add(x, y);
        let mut f = FrontierSolver::from_solver(s, 2);
        Engine::solve(&mut f);
        let yr = Engine::find(&mut f, y);
        let ls = Engine::least_solution(&mut f);
        assert_eq!(ls.get(yr), &[src]);
    }

    #[test]
    fn from_problem_matches_direct_construction() {
        let mut p = Problem::new(SolverConfig::if_online());
        let (src, y) = build_chain(&mut p);
        let mut f = FrontierSolver::from_problem(p);
        assert_eq!(f.threads(), 1);
        f.set_threads(3);
        f.set_batch_rounds(4);
        Engine::solve(&mut f);
        let yr = Engine::find(&mut f, y);
        let ls = Engine::least_solution(&mut f);
        assert_eq!(ls.get(yr), &[src]);
    }

    /// `CycleElim::Periodic` on the frontier engine: a plain-form config
    /// never searches online, so only the batch-boundary sweep can collapse
    /// the cycle — and it must agree with the sequential periodic solver.
    #[test]
    fn periodic_sweeps_collapse_plain_form_cycles() {
        let config = SolverConfig {
            cycle_elim: CycleElim::Periodic { interval: 1 },
            ..SolverConfig::if_plain()
        };
        let mut s = Solver::new(config);
        let (sx, sy) = (s.fresh_var(), s.fresh_var());
        s.add(sx, sy);
        s.add(sy, sx);
        s.solve();

        for threads in [1, 3] {
            for k in [1, 8] {
                let mut f = FrontierSolver::new(config, threads);
                f.set_batch_rounds(k);
                let (x, y) = (
                    ConstraintBuilder::fresh_var(&mut f),
                    ConstraintBuilder::fresh_var(&mut f),
                );
                ConstraintBuilder::add(&mut f, x, y);
                ConstraintBuilder::add(&mut f, y, x);
                Engine::solve(&mut f);
                let label = format!("threads {threads} K {k}");
                assert_eq!(Engine::find(&mut f, x), Engine::find(&mut f, y), "{label}");
                assert_eq!(Engine::stats(&f).cycles_collapsed, 1, "{label}");
                assert_eq!(Engine::stats(&f).vars_eliminated, 1, "{label}");
                assert_eq!(
                    Engine::stats(&f).cycles_collapsed,
                    s.stats().cycles_collapsed,
                    "{label}: agrees with sequential periodic"
                );
                assert_eq!(s.find(sx), Engine::find(&mut f, x), "{label}");
            }
        }
    }

    #[test]
    fn batching_is_observably_identical_and_amortizes_dispatch() {
        let mut reference: Option<(Stats, GraphCensus, LeastSolution, u64)> = None;
        for threads in [1, 2] {
            for k in [1, 2, 8] {
                let mut f = FrontierSolver::new(SolverConfig::if_online(), threads);
                f.set_batch_rounds(k);
                let (csrc, c2src, p, b) = build_variance(&mut f);
                let _ = (csrc, c2src);
                Engine::solve(&mut f);
                let _ = (Engine::find(&mut f, p), Engine::find(&mut f, b));
                let stats = *Engine::stats(&f);
                let census = Engine::census(&f);
                let ls = Engine::least_solution(&mut f);
                let rounds = f.rounds();
                if k > 1 {
                    assert!(
                        f.batches() < rounds,
                        "threads {threads} K {k}: batching must amortize dispatches"
                    );
                }
                match &reference {
                    None => reference = Some((stats, census, ls, rounds)),
                    Some((s0, c0, l0, r0)) => {
                        let label = format!("threads {threads} K {k}");
                        assert_eq!(&stats, s0, "{label}: stats");
                        assert_eq!(&census, c0, "{label}: census");
                        assert_eq!(&ls, l0, "{label}: least solution");
                        assert_eq!(rounds, *r0, "{label}: rounds");
                    }
                }
            }
        }
    }

    /// Non-default solution-set backends ride `SolverConfig::solset` into
    /// the engine's least solution — byte-identical to the default, across
    /// growth (the second `least_solution` call exercises the
    /// difference-propagating path on a warm evaluator).
    #[test]
    fn solset_backends_match_default_across_growth() {
        use bane_core::solset::SolSetKind;
        let run = |kind: SolSetKind, threads: usize| {
            let mut f = FrontierSolver::new(
                SolverConfig::if_online().with_solset(kind),
                threads,
            );
            let vs: Vec<Var> =
                (0..40).map(|_| ConstraintBuilder::fresh_var(&mut f)).collect();
            let c = ConstraintBuilder::register_nullary(&mut f, "c");
            let src = ConstraintBuilder::term(&mut f, c, vec![]);
            ConstraintBuilder::add(&mut f, src, vs[0]);
            for i in 0..39 {
                ConstraintBuilder::add(&mut f, vs[i], vs[i + 1]);
            }
            Engine::solve(&mut f);
            let first = Engine::least_solution(&mut f);
            // Grow: a back edge collapses a suffix cycle, new sources land.
            ConstraintBuilder::add(&mut f, vs[30], vs[10]);
            let c2 = ConstraintBuilder::register_nullary(&mut f, "c2");
            let src2 = ConstraintBuilder::term(&mut f, c2, vec![]);
            ConstraintBuilder::add(&mut f, src2, vs[20]);
            Engine::solve(&mut f);
            let second = Engine::least_solution(&mut f);
            (first, second)
        };
        for threads in [1, 4] {
            let reference = run(SolSetKind::SortedSpan, threads);
            for kind in [SolSetKind::Bitmap, SolSetKind::Hybrid] {
                let got = run(kind, threads);
                assert_eq!(got, reference, "{kind:?} threads {threads}");
            }
        }
    }

    /// `BatchRounds::Auto` on a long chain — every round past the first
    /// carries a handful of items, exactly the regime Auto targets: `K`
    /// must grow, dispatches must amortize below one per round, and every
    /// observable must match the fixed `K = 1` run.
    #[test]
    fn auto_batching_grows_k_without_observable_drift() {
        let build = |rounds: BatchRounds| {
            let mut f = FrontierSolver::new(SolverConfig::if_online(), 2);
            f.set_batch_rounds(rounds);
            let vs: Vec<Var> =
                (0..64).map(|_| ConstraintBuilder::fresh_var(&mut f)).collect();
            let c = ConstraintBuilder::register_nullary(&mut f, "c");
            let src = ConstraintBuilder::term(&mut f, c, vec![]);
            ConstraintBuilder::add(&mut f, src, vs[0]);
            for i in 0..63 {
                ConstraintBuilder::add(&mut f, vs[i], vs[i + 1]);
            }
            Engine::solve(&mut f);
            f
        };
        let mut fixed = build(BatchRounds::Fixed(1));
        let mut auto = build(BatchRounds::Auto);
        assert_eq!(auto.batch_policy(), BatchRounds::Auto);
        assert_eq!(Engine::stats(&auto), Engine::stats(&fixed), "stats");
        assert_eq!(Engine::census(&auto), Engine::census(&fixed), "census");
        assert_eq!(auto.rounds(), fixed.rounds(), "round sequence is K-invariant");
        assert_eq!(
            Engine::least_solution(&mut auto),
            Engine::least_solution(&mut fixed),
            "least solution"
        );
        assert_eq!(fixed.batches(), fixed.rounds(), "K = 1: one dispatch per round");
        assert!(
            auto.batches() < auto.rounds(),
            "Auto must deepen batches on small rounds ({} vs {})",
            auto.batches(),
            auto.rounds()
        );
        assert!(auto.batch_rounds() > 1, "adaptive K grew past 1");
        // `From<usize>` keeps the plain-integer call sites working.
        auto.set_batch_rounds(3);
        assert_eq!(auto.batch_policy(), BatchRounds::Fixed(3));
    }

    #[test]
    fn solve_limited_stops_at_the_work_bound() {
        let mut f = FrontierSolver::new(SolverConfig::if_online(), 2);
        let (src, y) = build_chain(&mut f);
        let _ = (src, y);
        assert!(!Engine::solve_limited(&mut f, 0), "bound 0 must trip");
        let mut g = FrontierSolver::new(SolverConfig::if_online(), 2);
        let _ = build_chain(&mut g);
        assert!(Engine::solve_limited(&mut g, u64::MAX));
    }

    #[test]
    fn run_report_covers_par_counters() {
        let mut f = FrontierSolver::new(SolverConfig::if_online(), 2);
        f.set_batch_rounds(8);
        f.enable_obs();
        f.enable_obs(); // idempotent
        let (x, y, z) = (
            ConstraintBuilder::fresh_var(&mut f),
            ConstraintBuilder::fresh_var(&mut f),
            ConstraintBuilder::fresh_var(&mut f),
        );
        ConstraintBuilder::add(&mut f, x, y);
        ConstraintBuilder::add(&mut f, y, z);
        ConstraintBuilder::add(&mut f, z, x);
        Engine::solve(&mut f);
        let _ = Engine::least_solution(&mut f);
        let report = f.run_report("frontier").expect("obs enabled");
        assert_eq!(report.counter("par.rounds"), Some(f.rounds()));
        assert_eq!(report.counter("par.commit.broadcasts"), Some(f.batches()));
        assert!(f.batches() < f.rounds(), "K = 8 batches several rounds per dispatch");
        assert!(report.counter("par.commits").unwrap_or(0) >= 3);
        assert!(report.counter("par.shard-scans").unwrap_or(0) >= f.rounds());
        assert!(report.phases.iter().any(|p| p.phase == Phase::ParCommit.name()));
        assert!(report.phases.iter().any(|p| p.phase == Phase::ParScan.name()));
        assert!(report.phases.iter().any(|p| p.phase == Phase::ParBatch.name()));
        assert!(report.phases.iter().any(|p| p.phase == Phase::ParLeast.name()));
        assert!(f.obs().is_some());
        assert_eq!(Engine::stats(&f).constraints_added, 3);
        let parts = f.into_parts();
        assert_eq!(parts.config.form, Form::Inductive);
    }

    /// Builds the workload where scan-phase memo hits genuinely occur:
    /// duplicate var-var constraints landing in one round each repeat the
    /// same frozen search, and a cycle collapsing mid-run exercises the
    /// revision invalidation against live commits.
    fn build_dup_heavy<B: ConstraintBuilder>(f: &mut B) -> Vec<Var> {
        let c = f.register_nullary("c");
        let src = f.term(c, vec![]);
        let vs: Vec<Var> = (0..12).map(|_| f.fresh_var()).collect();
        f.add(src, vs[0]);
        for round in 0..3 {
            for i in 0..11 {
                // The same chain edge four times: within the first round the
                // frozen graph never contains it, so every duplicate after
                // the first repeats an identical (negative) frozen search.
                for _ in 0..4 {
                    f.add(vs[i], vs[i + 1]);
                }
            }
            let _ = round;
        }
        // Close a cycle over the tail so a collapse invalidates verdicts.
        f.add(vs[11], vs[6]);
        vs
    }

    /// Scan-phase memo hits occur on duplicate frontier items, and every
    /// paper observable (stats, census, least solution) is byte-identical
    /// with the memo disabled — at multiple thread counts, across a
    /// mid-solve collapse.
    #[test]
    fn scan_memo_hits_without_observable_drift() {
        use bane_core::order::OrderPolicy;
        // Creation order makes the tail cycle's detection deterministic in
        // inductive form (the decreasing pred walk follows the chain).
        let configs = [
            SolverConfig { order: OrderPolicy::Creation, ..SolverConfig::sf_online() },
            SolverConfig { order: OrderPolicy::Creation, ..SolverConfig::if_online() },
        ];
        for config in configs {
            let mut reference = None;
            let mut saw_hits = false;
            for threads in [1usize, 2, 4] {
                for enabled in [true, false] {
                    let mut f = FrontierSolver::new(config, threads);
                    f.set_search_memo_enabled(enabled);
                    let vs = build_dup_heavy(&mut f);
                    Engine::solve(&mut f);
                    if config.form == Form::Inductive {
                        assert!(Engine::stats(&f).cycles_collapsed >= 1, "{config:?}");
                    }
                    let (hits, misses) = f.search_memo_counts();
                    if enabled {
                        saw_hits |= hits > 0;
                        assert_eq!(
                            hits + misses,
                            Engine::stats(&f).search.searches,
                            "every search routed through a memo, {config:?} threads {threads}"
                        );
                    } else {
                        assert_eq!((hits, misses), (0, 0), "disabled memo counts nothing");
                    }
                    let stats = *Engine::stats(&f);
                    let census = Engine::census(&f);
                    let ls = Engine::least_solution(&mut f);
                    let root = Engine::find(&mut f, vs[0]);
                    match &reference {
                        None => reference = Some((stats, census, ls, root)),
                        Some((s0, c0, l0, r0)) => {
                            let label =
                                format!("{config:?} threads {threads} memo {enabled}");
                            assert_eq!(&stats, s0, "{label}: stats");
                            assert_eq!(&census, c0, "{label}: census");
                            assert_eq!(&ls, l0, "{label}: least solution");
                            assert_eq!(root, *r0, "{label}: forwarding");
                        }
                    }
                }
            }
            assert!(saw_hits, "{config:?}: duplicates must produce real scan-phase hits");
        }
    }
}
