//! Multi-round **batched** execution of the frontier engine.
//!
//! One [`run_batch`] call dispatches a single [`Pool::broadcast`] and runs up
//! to `K` propose/commit rounds inside it, instead of paying one broadcast
//! (thread spawn + join) per round. Per-round semantics are *unchanged*:
//! workers scan the current frontier against the frozen round-start state,
//! then worker 0 commits every proposal sequentially in frontier order with
//! the same polarity-split staleness validation the unbatched engine used —
//! so the committed sequence, and with it every observable output (graph,
//! Work counters, inconsistency order, least solution), is byte-identical at
//! every thread count and every `K`. Batching only moves the *round barrier*
//! from "join all threads, return to the caller, broadcast again" down to an
//! in-pool [`Barrier`], amortizing dispatch overhead across `K` rounds.
//!
//! The protocol per round, with `threads` workers inside one broadcast:
//!
//! 1. **scan** — every worker takes a read lock on the shared [`BatchCore`],
//!    scans its [`chunk_range`] of the frontier into its shard scratch;
//! 2. barrier;
//! 3. **commit** — worker 0 takes the write lock, applies all proposals in
//!    shard order (= frontier order), runs a periodic cycle sweep if the
//!    round crossed the `CycleElim::Periodic` schedule boundary, swaps the
//!    frontier, and decides whether the batch continues (another round to
//!    run, `K` not yet exhausted, work bound not hit);
//! 4. barrier; workers read the continue flag and loop or exit.
//!
//! The `RwLock` + `Barrier` + `AtomicBool` trio makes every cross-thread
//! hand-off an explicit synchronization edge (TSan-clean by construction).
//! At `threads == 1` the broadcast is an inline call and every lock is
//! uncontended.
//!
//! Periodic sweeps run at *round* boundaries — `K`-invariant and
//! thread-invariant, because the round sequence itself does not depend on
//! how rounds are grouped into batches. See `docs/PARALLELISM.md`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex, RwLock};
use std::time::Instant;

use bane_core::cycle::SearchStats;
use bane_core::expr::SetExpr;
use bane_core::solver::{CycleElim, EngineParts};
use bane_obs::{Counter, Counters};

use crate::commit::Committer;
use crate::pool::{chunk_range, Pool};
use crate::shard::{scan_item, ShardScratch};

/// Everything a batch borrows from the engine, for one [`run_batch`] call.
pub(crate) struct BatchArgs<'a> {
    pub parts: &'a mut EngineParts,
    pub frontier: &'a mut Vec<(SetExpr, SetExpr)>,
    pub next: &'a mut Vec<(SetExpr, SetExpr)>,
    pub shards: &'a [Mutex<ShardScratch>],
    pub committer: &'a mut Committer,
    pub threads: usize,
    /// Maximum rounds this batch may run (`K`, clamped to at least 1).
    pub batch_rounds: usize,
    /// Work bound checked at round boundaries (`u64::MAX` for `solve`).
    pub max_work: u64,
    /// Next `constraints_processed` threshold that triggers a periodic
    /// sweep (ignored unless the config is `CycleElim::Periodic`).
    pub next_sweep_at: &'a mut u64,
    /// Live counter registry (`Sync`), if observability is enabled. The
    /// non-`Sync` half of the recorder (phase timers) cannot cross into the
    /// broadcast; timings accumulate in [`BatchTelemetry`] instead and the
    /// caller replays them afterwards.
    pub counters: Option<&'a Counters>,
    /// Whether to measure phase timings into the telemetry buffers.
    pub timing: bool,
}

/// Phase timings captured inside the broadcast, replayed into the recorder
/// by the caller (the phase timers are thread-local by design).
#[derive(Debug, Default)]
pub(crate) struct BatchTelemetry {
    /// One entry per shard scan, in commit (shard) order.
    pub scan_ns: Vec<u64>,
    /// One entry per committed round.
    pub commit_ns: Vec<u64>,
    /// One entry per periodic sweep.
    pub sweep_ns: Vec<u64>,
}

/// What one batch did.
#[derive(Debug)]
pub(crate) struct BatchOutcome {
    /// Rounds executed in this batch (1..=`batch_rounds`).
    pub rounds_run: u64,
    /// Whether the batch used its full `K` rounds.
    pub ran_full: bool,
    /// Whether the work bound was exceeded (the engine must stop).
    pub work_exceeded: bool,
    /// The largest frontier any committed round in this batch consumed
    /// (0 when no round ran). Feeds the adaptive-`K` policy: small rounds
    /// are dominated by dispatch overhead and reward deeper batching.
    pub max_round_len: usize,
    /// Captured phase timings (empty unless `timing`).
    pub telemetry: BatchTelemetry,
}

/// The shared mutable state of one batch, behind the `RwLock`.
struct BatchCore<'a> {
    parts: &'a mut EngineParts,
    frontier: &'a mut Vec<(SetExpr, SetExpr)>,
    next: &'a mut Vec<(SetExpr, SetExpr)>,
    committer: &'a mut Committer,
    next_sweep_at: &'a mut u64,
    rounds_run: u64,
    work_exceeded: bool,
    max_round_len: usize,
    telemetry: BatchTelemetry,
}

impl BatchCore<'_> {
    /// Worker 0's round commit: apply every shard's proposals in frontier
    /// order, sweep if the periodic schedule says so, swap the frontier.
    /// Returns whether the batch should run another round.
    fn commit_round(
        &mut self,
        shards: &[Mutex<ShardScratch>],
        threads: usize,
        batch_rounds: usize,
        max_work: u64,
        counters: Option<&Counters>,
        timing: bool,
    ) -> bool {
        let t0 = timing.then(Instant::now);
        let epoch = self.parts.fwd.collapsed_count();
        if let Some(c) = counters {
            c.add(Counter::ParRounds, 1);
            c.add(Counter::ParProposals, self.frontier.len() as u64);
        }
        self.rounds_run += 1;
        self.max_round_len = self.max_round_len.max(self.frontier.len());
        self.committer.begin_round();
        let mut committed = 0u64;
        for shard in shards.iter().take(threads) {
            let mut st = shard.lock().expect("shard mutex poisoned");
            let st = &mut *st;
            if timing {
                self.telemetry.scan_ns.push(st.scan_ns);
            }
            // Merge the shard's frozen-search counters in shard order; the
            // aggregate is the same set of searches at any thread count.
            merge_search(&mut self.parts.stats.search, &st.stats);
            st.stats = SearchStats::default();
            for i in 0..st.proposals.len() {
                self.committer.apply(
                    self.parts,
                    &st.proposals[i],
                    &st.paths,
                    &st.derived,
                    self.next,
                    epoch,
                );
                committed += 1;
            }
        }
        if let Some(c) = counters {
            c.add(Counter::ParCommits, committed);
        }
        // Periodic sweep at the round boundary, before the swap so absorbed
        // edges re-enter the schedule through the next frontier. The
        // threshold is a pure function of `constraints_processed`, which is
        // itself thread- and K-invariant, so the sweep schedule is too.
        if let CycleElim::Periodic { interval } = self.parts.config.cycle_elim {
            let interval = interval.max(1) as u64;
            if self.parts.stats.constraints_processed >= *self.next_sweep_at {
                let ts = timing.then(Instant::now);
                self.committer.periodic_sweep(self.parts, self.next);
                if let Some(c) = counters {
                    c.add(Counter::ParBatchSweeps, 1);
                }
                *self.next_sweep_at =
                    (self.parts.stats.constraints_processed / interval + 1) * interval;
                if let Some(ts) = ts {
                    self.telemetry.sweep_ns.push(ts.elapsed().as_nanos() as u64);
                }
            }
        }
        std::mem::swap(self.frontier, self.next);
        self.next.clear();
        if let Some(t0) = t0 {
            self.telemetry.commit_ns.push(t0.elapsed().as_nanos() as u64);
        }
        if self.parts.stats.work > max_work {
            self.work_exceeded = true;
            return false;
        }
        !self.frontier.is_empty() && self.rounds_run < batch_rounds as u64
    }
}

/// Runs one batch of up to `args.batch_rounds` rounds inside a single pool
/// broadcast. See the [module docs](self) for the protocol.
pub(crate) fn run_batch(args: BatchArgs<'_>) -> BatchOutcome {
    let BatchArgs {
        parts,
        frontier,
        next,
        shards,
        committer,
        threads,
        batch_rounds,
        max_work,
        next_sweep_at,
        counters,
        timing,
    } = args;
    let batch_rounds = batch_rounds.max(1);
    let core = RwLock::new(BatchCore {
        parts,
        frontier,
        next,
        committer,
        next_sweep_at,
        rounds_run: 0,
        work_exceeded: false,
        max_round_len: 0,
        telemetry: BatchTelemetry::default(),
    });
    let barrier = Barrier::new(threads);
    let more = AtomicBool::new(true);

    Pool::new(threads).broadcast(|w| loop {
        // Scan: propose against the frozen round-start state, under the
        // read lock (shared with the other workers, never with the commit).
        {
            let core = core.read().expect("batch lock poisoned");
            let frozen: &EngineParts = core.parts;
            let len = core.frontier.len();
            let mut st = shards[w].lock().expect("shard mutex poisoned");
            let st = &mut *st;
            let t0 = timing.then(Instant::now);
            st.begin_round(frozen.graph.len());
            let (cs, ce) = chunk_range(len, threads, w);
            for &(lhs, rhs) in &core.frontier[cs..ce] {
                let p = scan_item(frozen, lhs, rhs, st);
                st.proposals.push(p);
            }
            if let Some(t0) = t0 {
                st.scan_ns = t0.elapsed().as_nanos() as u64;
            }
            if let Some(c) = counters {
                c.add(Counter::ParShardScans, 1);
            }
        }
        barrier.wait();
        if w == 0 {
            let mut core = core.write().expect("batch lock poisoned");
            let cont = core.commit_round(shards, threads, batch_rounds, max_work, counters, timing);
            more.store(cont, Ordering::Release);
        }
        barrier.wait();
        if !more.load(Ordering::Acquire) {
            return;
        }
    });

    let core = core.into_inner().expect("batch lock poisoned");
    BatchOutcome {
        rounds_run: core.rounds_run,
        ran_full: core.rounds_run == batch_rounds as u64,
        work_exceeded: core.work_exceeded,
        max_round_len: core.max_round_len,
        telemetry: core.telemetry,
    }
}

/// Sums `from` into `into` (component-wise; `max_visits` by maximum).
pub(crate) fn merge_search(into: &mut SearchStats, from: &SearchStats) {
    into.searches += from.searches;
    into.nodes_visited += from.nodes_visited;
    into.edges_scanned += from.edges_scanned;
    into.cycles_found += from.cycles_found;
    into.max_visits = into.max_visits.max(from.max_visits);
}
