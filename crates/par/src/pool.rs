//! A minimal scoped worker pool and deterministic work partitioning.
//!
//! The engines in this crate never hand work out dynamically: every parallel
//! region partitions its items with [`chunk_range`], a pure function of
//! `(len, threads, worker)`. Determinism then needs no further machinery —
//! each worker always sees the same items in the same order, at every thread
//! count, on every run.
//!
//! [`Pool::broadcast`] is deliberately thin: it runs one closure per worker
//! index on scoped threads (the calling thread doubles as worker 0) and
//! joins them all. With one thread it is a plain function call — no spawn,
//! no synchronization, no allocation — which is what keeps the
//! single-threaded paths of [`ParLeast`](crate::ParLeast) and
//! [`FrontierSolver`](crate::FrontierSolver) allocation-free and
//! overhead-free.

/// Number of logical CPUs the host reports, or 1 if unknown.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The half-open item range `[start, end)` worker `w` of `threads` owns when
/// `len` items are split into contiguous, near-equal chunks.
///
/// The first `len % threads` workers get one extra item, so concatenating
/// the ranges for `w = 0..threads` reproduces `0..len` exactly — the
/// property every deterministic commit in this crate relies on.
pub fn chunk_range(len: usize, threads: usize, w: usize) -> (usize, usize) {
    let base = len / threads;
    let rem = len % threads;
    let start = w * base + w.min(rem);
    let end = start + base + usize::from(w < rem);
    (start, end)
}

/// A fixed-width scoped worker pool.
///
/// Threads are not kept alive between broadcasts; [`broadcast`](Pool::broadcast)
/// spawns scoped threads and joins them before returning. Callers that need
/// per-level synchronization tighter than one broadcast (the level loop in
/// [`ParLeast`](crate::ParLeast)) issue a single broadcast and coordinate
/// inside it with a [`Barrier`](std::sync::Barrier).
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool { threads: threads.max(1) }
    }

    /// Number of workers this pool runs.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(w)` once for every worker index `w` in `0..threads` and
    /// waits for all of them.
    ///
    /// Worker 0 runs on the calling thread; with a single-worker pool this
    /// is an inline call with zero synchronization.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads == 1 {
            f(0);
            return;
        }
        std::thread::scope(|s| {
            for w in 1..self.threads {
                let f = &f;
                s.spawn(move || f(w));
            }
            f(0);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn chunk_ranges_partition_exactly() {
        for len in 0..40 {
            for threads in 1..9 {
                let mut next = 0;
                for w in 0..threads {
                    let (s, e) = chunk_range(len, threads, w);
                    assert_eq!(s, next, "len {len} threads {threads} worker {w}");
                    assert!(e >= s);
                    next = e;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn chunk_sizes_are_balanced() {
        let sizes: Vec<usize> = (0..4).map(|w| {
            let (s, e) = chunk_range(10, 4, w);
            e - s
        }).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn broadcast_runs_every_worker_once() {
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            assert_eq!(pool.threads(), threads);
            let hits = AtomicU64::new(0);
            pool.broadcast(|w| {
                assert!(w < threads);
                hits.fetch_add(1 << (8 * w), Ordering::Relaxed);
            });
            let want = (0..threads).map(|w| 1u64 << (8 * w)).sum::<u64>();
            assert_eq!(hits.load(Ordering::Relaxed), want);
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(available_threads() >= 1);
    }
}
