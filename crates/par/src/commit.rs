//! The **commit** half of the frontier engine: applying proposals to live
//! state, in a fixed order, with deterministic re-validation.
//!
//! Proposals were computed against the frozen round-start state; by the time
//! one commits, earlier commits in the same round may have inserted edges or
//! collapsed cycles. The committer therefore re-derives everything cheap
//! from live state (canonical endpoints, redundancy) and handles the one
//! expensive frozen observation — the cycle-search verdict — by **staleness
//! validation**, with one rule per verdict polarity:
//!
//! - A frozen **found path** stays valid as long as no collapse has
//!   happened since the round began (`fwd.collapsed_count()` unchanged):
//!   edges are only ever *removed* by a collapse, and forwarding pointers
//!   are then identical to the frozen state, so the path is still a live
//!   cycle. Insertions cannot invalidate an existing path.
//! - A frozen **no-cycle** verdict is only valid while the variable-variable
//!   graph is *untouched* — no collapse and no var-var edge insertion this
//!   round. A new edge can close a cycle the frozen search proved absent
//!   (the classic case: both halves of a 2-cycle arriving in one round).
//!   Source/sink insertions don't matter: chain searches traverse var-var
//!   edges only.
//!
//! A stale verdict is discarded and the search reruns against live state.
//! By Theorem 5.2 those reruns are cheap — decreasing chains visit ~2
//! nodes on the paper's graphs — so sequential re-validation does not
//! dominate a round even when every verdict in it goes stale.
//!
//! Every input to these decisions — the commit order, the epoch, the live
//! graph at each step — is itself a deterministic function of the frontier
//! and the frozen scans, so the engine's stats (including the paper's Work
//! metric), collapses, inconsistency list, and final graph reproduce exactly
//! at any thread count. See `docs/PARALLELISM.md` for the full argument.

use bane_core::cycle::{ChainDir, ChainSearch, CycleSweep, SearchMemo, StepOrder};
use bane_core::expr::SetExpr;
use bane_core::graph::Insert;
use bane_core::solver::{CycleElim, EngineParts, Form};
use bane_core::{TermId, Var};

use crate::shard::Proposal;

/// The sequential proposal applier. Owns the live-search scratch and the
/// collapse buffers, all reused across commits (steady-state committing
/// allocates only for genuinely new graph edges).
#[derive(Debug, Default)]
pub(crate) struct Committer {
    search: ChainSearch,
    /// Negative-verdict memo for live re-validation searches. Commit-order
    /// searches rarely repeat a key (each is followed by an insert or a
    /// collapse, exactly like the sequential solver), so this is mostly
    /// bookkeeping — the hits live in the scan-phase memos — but routing
    /// through it keeps the commit path on the same audited code path.
    memo: SearchMemo,
    path_buf: Vec<Var>,
    members_buf: Vec<Var>,
    /// Tarjan scratch for batch-boundary periodic sweeps.
    sweep: CycleSweep,
    /// Var-var edges inserted so far this round; while 0 (and no collapse
    /// has occurred) the live var-var graph equals the frozen one and
    /// frozen no-cycle verdicts remain proofs.
    varvar_inserts: u64,
}

impl Committer {
    /// Resets the per-round staleness tracking.
    pub fn begin_round(&mut self) {
        self.varvar_inserts = 0;
    }

    /// Cumulative `(hits, misses)` of the commit-phase memo.
    pub fn memo_counts(&self) -> (u64, u64) {
        (self.memo.hits(), self.memo.misses())
    }

    /// Enables or disables the commit-phase memo.
    pub fn set_memo_enabled(&mut self, enabled: bool) {
        self.memo.set_enabled(enabled);
    }

    /// Physical epoch wraparound resets across this committer's live-search
    /// and sweep scratches.
    pub fn epoch_resets(&self) -> u64 {
        self.search.epoch_resets() + self.sweep.epoch_resets()
    }

    /// One offline elimination pass at a round boundary — the frontier
    /// analogue of the sequential solver's `offline_collapse`
    /// (`CycleElim::Periodic`).
    ///
    /// Runs the shared [`CycleSweep`] over the live canonical graph and
    /// collapses every non-trivial SCC through this committer's own
    /// [`collapse`](Committer::collapse), so absorbed edges are re-asserted
    /// onto `next` and re-enter the frontier schedule. Must run *before* the
    /// frontier/next swap; collapses performed here advance the forwarding
    /// epoch exactly like online collapses, so frozen verdicts from
    /// not-yet-committed rounds are invalidated by the ordinary staleness
    /// rules.
    pub fn periodic_sweep(&mut self, parts: &mut EngineParts, next: &mut Vec<(SetExpr, SetExpr)>) {
        let mut sweep = std::mem::take(&mut self.sweep);
        let count = sweep.compute(&parts.graph, &parts.fwd);
        for i in 0..count {
            self.path_buf.clear();
            self.path_buf.extend_from_slice(sweep.component(i));
            self.collapse(parts, next);
        }
        self.sweep = sweep;
    }
    /// Applies one proposal to `parts`, pushing any derived constraints onto
    /// `next` (the next round's frontier). `paths` and `derived` are the
    /// proposal's shard-local flat buffers; `epoch` is the round-start
    /// collapse count.
    pub fn apply(
        &mut self,
        parts: &mut EngineParts,
        p: &Proposal,
        paths: &[Var],
        derived: &[(SetExpr, SetExpr)],
        next: &mut Vec<(SetExpr, SetExpr)>,
        epoch: usize,
    ) {
        parts.stats.constraints_processed += 1;
        match *p {
            Proposal::Trivial => {}
            Proposal::SelfVar => parts.stats.self_constraints += 1,
            Proposal::TermTerm { derived: (ds, de), error, resolved } => {
                parts.stats.term_constraints += 1;
                if let Some(err) = error {
                    parts.stats.inconsistencies += 1;
                    parts.errors.push(err);
                } else if resolved {
                    parts.stats.resolutions += 1;
                    next.extend_from_slice(&derived[ds as usize..de as usize]);
                }
            }
            Proposal::Src { s, y } => self.commit_src(parts, s, y, next),
            Proposal::Snk { x, t } => self.commit_snk(parts, x, t, next),
            Proposal::VarVar { x, y, path } => {
                self.commit_var_var(parts, x, y, path, paths, next, epoch)
            }
        }
    }

    /// Mirrors `Solver::add_src`: count Work, drop redundant edges, fan the
    /// closure rule out over `y`'s successors.
    fn commit_src(
        &mut self,
        parts: &mut EngineParts,
        s: TermId,
        y: Var,
        next: &mut Vec<(SetExpr, SetExpr)>,
    ) {
        let y = parts.fwd.find(y);
        parts.stats.work += 1;
        if parts.graph.insert_src(y, s) == Insert::Redundant {
            parts.stats.redundant += 1;
            return;
        }
        parts.source_terms.insert(s);
        parts.graph.compact_node(y, &parts.fwd);
        let node = parts.graph.node(y);
        for &r in node.succ_vars() {
            next.push((SetExpr::Term(s), SetExpr::Var(r)));
        }
        for &r in node.succ_snks() {
            next.push((SetExpr::Term(s), SetExpr::Term(r)));
        }
    }

    /// Mirrors `Solver::add_snk`.
    fn commit_snk(
        &mut self,
        parts: &mut EngineParts,
        x: Var,
        t: TermId,
        next: &mut Vec<(SetExpr, SetExpr)>,
    ) {
        let x = parts.fwd.find(x);
        parts.stats.work += 1;
        if parts.graph.insert_snk(x, t) == Insert::Redundant {
            parts.stats.redundant += 1;
            return;
        }
        parts.sink_terms.insert(t);
        parts.graph.compact_node(x, &parts.fwd);
        let node = parts.graph.node(x);
        for &l in node.pred_srcs() {
            next.push((SetExpr::Term(l), SetExpr::Term(t)));
        }
        for &l in node.pred_vars() {
            next.push((SetExpr::Var(l), SetExpr::Term(t)));
        }
    }

    /// Mirrors `Solver::var_var`, substituting the epoch-validated frozen
    /// search verdict for an inline search whenever it is still valid.
    #[allow(clippy::too_many_arguments)] // internal plumbing mirrors var_var's knobs
    fn commit_var_var(
        &mut self,
        parts: &mut EngineParts,
        x: Var,
        y: Var,
        path: Option<(u32, u32)>,
        paths: &[Var],
        next: &mut Vec<(SetExpr, SetExpr)>,
        epoch: usize,
    ) {
        let x = parts.fwd.find(x);
        let y = parts.fwd.find(y);
        if x == y {
            parts.stats.self_constraints += 1;
            return;
        }
        let as_pred = match parts.config.form {
            Form::Standard => false,
            Form::Inductive => parts.order.lt(x, y),
        };
        parts.stats.work += 1;
        let redundant = if as_pred {
            parts.graph.has_pred_var(y, x)
        } else {
            parts.graph.has_succ_var(x, y)
        };
        if redundant {
            parts.stats.redundant += 1;
            return;
        }
        if parts.config.cycle_elim == CycleElim::Online {
            let no_collapse = parts.fwd.collapsed_count() == epoch;
            let untouched = no_collapse && self.varvar_inserts == 0;
            if let Some((ps, pe)) = path {
                if no_collapse {
                    // Edges are only removed by collapses, so the frozen
                    // path is still a live cycle.
                    self.path_buf.clear();
                    self.path_buf.extend_from_slice(&paths[ps as usize..pe as usize]);
                    self.collapse(parts, next);
                    return;
                }
                if self.live_search(parts, x, y, as_pred) {
                    self.collapse(parts, next);
                    return;
                }
            } else if !untouched && self.live_search(parts, x, y, as_pred) {
                // The frozen "no cycle" proof is stale: an edge inserted
                // this round may have closed a chain the scan ruled out.
                self.collapse(parts, next);
                return;
            }
        }
        self.varvar_inserts += 1;
        if as_pred {
            parts.graph.insert_pred_var(y, x);
            parts.graph.compact_node(y, &parts.fwd);
            let node = parts.graph.node(y);
            for &r in node.succ_vars() {
                next.push((SetExpr::Var(x), SetExpr::Var(r)));
            }
            for &r in node.succ_snks() {
                next.push((SetExpr::Var(x), SetExpr::Term(r)));
            }
        } else {
            parts.graph.insert_succ_var(x, y);
            parts.graph.compact_node(x, &parts.fwd);
            let node = parts.graph.node(x);
            for &l in node.pred_srcs() {
                next.push((SetExpr::Term(l), SetExpr::Var(y)));
            }
            for &l in node.pred_vars() {
                next.push((SetExpr::Var(l), SetExpr::Var(y)));
            }
        }
    }

    /// Reruns `Solver::var_var`'s search against live state, leaving a found
    /// path in `self.path_buf`.
    fn live_search(&mut self, parts: &mut EngineParts, x: Var, y: Var, as_pred: bool) -> bool {
        self.search.grow(parts.graph.len());
        let (graph, fwd, order) = (&parts.graph, &parts.fwd, &parts.order);
        let stats = &mut parts.stats.search;
        if as_pred {
            return self.memo.search(
                &mut self.search,
                graph,
                fwd,
                order,
                y,
                x,
                ChainDir::Succ,
                StepOrder::Decreasing,
                stats,
                &mut self.path_buf,
            );
        }
        match parts.config.form {
            Form::Inductive => self.memo.search(
                &mut self.search,
                graph,
                fwd,
                order,
                x,
                y,
                ChainDir::Pred,
                StepOrder::Decreasing,
                stats,
                &mut self.path_buf,
            ),
            Form::Standard => {
                for &step in parts.config.sf_chain.steps() {
                    if self.memo.search(
                        &mut self.search,
                        graph,
                        fwd,
                        order,
                        y,
                        x,
                        ChainDir::Succ,
                        step,
                        stats,
                        &mut self.path_buf,
                    ) {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Mirrors `Solver::collapse` over the path in `self.path_buf`: forward
    /// every member to the lowest-ordered witness and re-assert the absorbed
    /// edges through the next frontier.
    fn collapse(&mut self, parts: &mut EngineParts, next: &mut Vec<(SetExpr, SetExpr)>) {
        let members = &mut self.members_buf;
        members.clear();
        members.extend(self.path_buf.iter().map(|&v| parts.fwd.find(v)));
        members.sort_unstable();
        members.dedup();
        if members.len() < 2 {
            return;
        }
        let witness = parts.order.min_of(&*members);
        parts.stats.cycles_collapsed += 1;
        for &m in members.iter() {
            if m == witness {
                continue;
            }
            parts.stats.vars_eliminated += 1;
            let taken = parts.graph.take_edges(m);
            parts.fwd.union_into(m, witness);
            for s in taken.pred_srcs {
                next.push((SetExpr::Term(s), SetExpr::Var(witness)));
            }
            for u in taken.pred_vars {
                next.push((SetExpr::Var(u), SetExpr::Var(witness)));
            }
            for u in taken.succ_vars {
                next.push((SetExpr::Var(witness), SetExpr::Var(u)));
            }
            for t in taken.succ_snks {
                next.push((SetExpr::Var(witness), SetExpr::Term(t)));
            }
        }
    }
}
