//! Property tests for the closure analysis: whatever program the generator
//! produces, every solver configuration computes the same abstract values.

use bane_cfa::analysis::analyze;
use bane_cfa::ast::Expr;
use bane_cfa::gen::{generate, CfaGenConfig};
use bane_core::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn configurations_agree(seed in 0u64..500, mixing in 0.0f64..0.8) {
        let mut config = CfaGenConfig::sized(300, seed);
        config.fn_arg_prob = mixing;
        let program = generate(&config);

        // Reference: per-application callee counts under SF-Plain.
        let reference: Vec<usize> = {
            let mut cfa = analyze(&program, SolverConfig::sf_plain());
            cfa.call_summary(&program).into_iter().map(|(_, n)| n).collect()
        };
        for solver_config in [
            SolverConfig::if_plain(),
            SolverConfig::sf_online(),
            SolverConfig::if_online(),
            SolverConfig::if_online().with_order(OrderPolicy::Creation),
        ] {
            let mut cfa = analyze(&program, solver_config);
            let got: Vec<usize> =
                cfa.call_summary(&program).into_iter().map(|(_, n)| n).collect();
            prop_assert_eq!(&got, &reference, "{:?}", solver_config);
        }
    }

    #[test]
    fn callees_are_always_lambdas_of_the_program(seed in 0u64..500) {
        let program = generate(&CfaGenConfig::sized(300, seed));
        let mut cfa = analyze(&program, SolverConfig::if_online());
        for id in program.term.ids() {
            if let Expr::App(f, _) = program.term.get(id) {
                for lam in cfa.values_of(*f) {
                    prop_assert!(matches!(program.term.get(lam), Expr::Lam(..)));
                }
            }
        }
        prop_assert!(cfa.solver.inconsistencies().is_empty());
    }
}
