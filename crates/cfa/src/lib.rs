//! Closure analysis (0-CFA) via the `bane` solver — the paper's stated
//! future work ("We plan to study the impact of online cycle elimination on
//! the performance of closure analysis in future work", Section 6).
//!
//! A small functional language ([`ast`], [`mod@parse`]), monovariant closure
//! analysis as inclusion constraints ([`analysis`]) using the same engine as
//! the points-to experiments, and a synthetic generator of mutually
//! recursive higher-order programs ([`gen`]) — the shape \[MW97\] reported as
//! a performance cliff for set-constraint type systems. The `cfa` binary in
//! `bane-bench` measures all four solver configurations on it.
//!
//! # Examples
//!
//! ```
//! use bane_cfa::parse::parse;
//! use bane_cfa::analysis::analyze;
//! use bane_core::prelude::SolverConfig;
//!
//! let program = parse(r"let id = \x. x in id id")?;
//! let mut cfa = analyze(&program, SolverConfig::if_online());
//! let values = cfa.values_of(program.root);
//! assert_eq!(values.len(), 1, "(id id) is the identity lambda");
//! # Ok::<(), bane_cfa::parse::ParseError>(())
//! ```

pub mod analysis;
pub mod ast;
pub mod gen;
pub mod parse;

pub use analysis::{analyze, generate, Cfa};
pub use ast::{Expr, ExprId, Program, Term};
pub use gen::{generate as generate_program, CfaGenConfig};
pub use parse::{parse, ParseError};
