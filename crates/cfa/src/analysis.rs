//! 0-CFA (monovariant closure analysis) as inclusion constraints.
//!
//! Every expression node `e` gets a *cache* variable `C(e)` and every bound
//! identifier `x` an *environment* variable `X_x`; abstract values are the
//! program's lambdas, encoded with the solver's `lam(X̄ₓ, C(body))`
//! constructor (contravariant parameter, covariant result — exactly the
//! reference-free fragment of the paper's constraint language):
//!
//! | node | constraints |
//! |---|---|
//! | `x` | `X_x ⊆ C(e)` |
//! | `\x. b` | `lam(X̄ₓ, C(b)) ⊆ C(e)` |
//! | `f a` | `C(f) ⊆ lam(C̄(a), R)`, `R ⊆ C(e)` |
//! | `let/letrec x = v in b` | `C(v) ⊆ X_x`, `C(b) ⊆ C(e)` |
//! | `if0 c t e` | `C(t) ⊆ C(e)`, `C(e₂) ⊆ C(e)` |
//! | `n`, `+` | no closure flow |
//!
//! `letrec` puts `x` in scope of `v`, which is how recursive and mutually
//! recursive definitions wire the constraint graph into cycles — the paper's
//! future-work question is precisely whether online cycle elimination helps
//! here (spoiler, measured by the `cfa` bench binary: it does).

use crate::ast::{Expr, ExprId, Program};
use bane_core::cons::Con;
use bane_core::prelude::*;
use bane_util::idx::Idx;
use bane_util::FxHashMap;
use std::collections::BTreeSet;

/// The solved closure analysis.
#[derive(Debug)]
pub struct Cfa {
    /// The solved constraint system.
    pub solver: Solver,
    /// Cache variable per expression node.
    caches: Vec<Var>,
    /// The lambda each `lam` term denotes.
    lam_of_term: FxHashMap<TermId, ExprId>,
}

/// Generates the 0-CFA constraints for `program` into any
/// [`ConstraintBuilder`] (a solver, a frontier engine, or a bare
/// [`Problem`]).
///
/// Returns the cache variables and the `lam`-term table; does not solve.
pub fn generate<B: ConstraintBuilder>(
    program: &Program,
    solver: &mut B,
) -> (Vec<Var>, FxHashMap<TermId, ExprId>) {
    let lam_con = solver.register_con(
        "lam",
        vec![Variance::Contravariant, Variance::Covariant],
    );
    let mut gen = Gen {
        program,
        solver,
        lam_con,
        caches: (0..program.term.len()).map(|_| Var::new(0)).collect(),
        lam_of_term: FxHashMap::default(),
        env: Vec::new(),
    };
    for id in program.term.ids() {
        gen.caches[id.index()] = gen.solver.fresh_var();
    }
    gen.walk(program.root);
    (gen.caches, gen.lam_of_term)
}

/// Runs the full pipeline under `config`.
pub fn analyze(program: &Program, config: SolverConfig) -> Cfa {
    let mut solver = Solver::new(config);
    let (caches, lam_of_term) = generate(program, &mut solver);
    solver.solve();
    Cfa { solver, caches, lam_of_term }
}

impl Cfa {
    /// The lambdas that may flow to expression `e` (sorted by node id).
    pub fn values_of(&mut self, e: ExprId) -> Vec<ExprId> {
        let v = self.solver.find(self.caches[e.index()]);
        let ls = self.solver.least_solution();
        let mut out: Vec<ExprId> = ls
            .get(v)
            .iter()
            .filter_map(|t| self.lam_of_term.get(t).copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// The lambdas callable at application node `app` (its callee's values).
    ///
    /// # Panics
    ///
    /// Panics if `app` is not an application node of the analyzed program.
    pub fn callees_of(&mut self, program: &Program, app: ExprId) -> Vec<ExprId> {
        let Expr::App(f, _) = program.term.get(app) else {
            panic!("{app} is not an application");
        };
        self.values_of(*f)
    }

    /// All application nodes with the number of callable lambdas — the
    /// call-graph summary clients of closure analysis consume.
    pub fn call_summary(&mut self, program: &Program) -> Vec<(ExprId, usize)> {
        let mut out = Vec::new();
        for id in program.term.ids() {
            if let Expr::App(f, _) = program.term.get(id) {
                let n = self.values_of(*f).len();
                out.push((id, n));
            }
        }
        out
    }
}

struct Gen<'p, 's, B> {
    program: &'p Program,
    solver: &'s mut B,
    lam_con: Con,
    caches: Vec<Var>,
    lam_of_term: FxHashMap<TermId, ExprId>,
    /// Lexical environment: (name, variable) pairs, innermost last.
    env: Vec<(String, Var)>,
}

impl<B: ConstraintBuilder> Gen<'_, '_, B> {
    fn cache(&self, e: ExprId) -> Var {
        self.caches[e.index()]
    }

    fn lookup(&self, name: &str) -> Option<Var> {
        self.env.iter().rev().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    fn walk(&mut self, e: ExprId) {
        let ce = self.cache(e);
        match self.program.term.get(e).clone() {
            Expr::Var(x) => {
                // Unbound variables denote no closures (like C's externs
                // they could be made ⊤; empty is the conventional choice).
                if let Some(xv) = self.lookup(&x) {
                    self.solver.add(xv, ce);
                }
            }
            Expr::Int(_) => {}
            Expr::Lam(x, body) => {
                let xv = self.solver.fresh_var();
                let lam = self.solver.term(
                    self.lam_con,
                    vec![xv.into(), self.cache(body).into()],
                );
                self.lam_of_term.insert(lam, e);
                self.solver.add(lam, ce);
                self.env.push((x, xv));
                self.walk(body);
                self.env.pop();
            }
            Expr::App(f, a) => {
                self.walk(f);
                self.walk(a);
                let result = self.solver.fresh_var();
                let sink = self.solver.term(
                    self.lam_con,
                    vec![self.cache(a).into(), result.into()],
                );
                self.solver.add(self.cache(f), sink);
                self.solver.add(result, ce);
            }
            Expr::Add(a, b) => {
                self.walk(a);
                self.walk(b);
            }
            Expr::Let(x, bound, body) => {
                self.walk(bound);
                let xv = self.solver.fresh_var();
                self.solver.add(self.cache(bound), xv);
                self.env.push((x, xv));
                self.walk(body);
                self.env.pop();
                self.solver.add(self.cache(body), ce);
            }
            Expr::LetRec(x, bound, body) => {
                let xv = self.solver.fresh_var();
                self.env.push((x, xv));
                self.walk(bound);
                self.solver.add(self.cache(bound), xv);
                self.walk(body);
                self.env.pop();
                self.solver.add(self.cache(body), ce);
            }
            Expr::If0(c, t, els) => {
                self.walk(c);
                self.walk(t);
                self.walk(els);
                self.solver.add(self.cache(t), ce);
                self.solver.add(self.cache(els), ce);
            }
        }
    }
}

/// A set of lambdas by display string, for readable assertions.
pub fn lambda_names(program: &Program, lams: &[ExprId]) -> BTreeSet<String> {
    lams.iter().map(|&l| program.term.display(l)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn values(src: &str, config: SolverConfig) -> BTreeSet<String> {
        let program = parse(src).expect("parses");
        let mut cfa = analyze(&program, config);
        let vals = cfa.values_of(program.root);
        lambda_names(&program, &vals)
    }

    #[test]
    fn identity_application_returns_identity() {
        // (id id) evaluates to id itself.
        let v = values(r"let id = \x. x in id id", SolverConfig::if_online());
        assert_eq!(v.len(), 1);
        assert!(v.contains("\\x. x"));
    }

    #[test]
    fn branches_merge() {
        let v = values(
            r"let f = \x. x in let g = \y. y in if0 0 then f else g",
            SolverConfig::if_online(),
        );
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn higher_order_flow() {
        // apply = \f. \x. f x;  (apply id) 3 → id's result → no lambdas,
        // but the callee sets are precise.
        let src = r"let apply = \f. \x. f x in let id = \z. z in apply id 0";
        let program = parse(src).unwrap();
        let mut cfa = analyze(&program, SolverConfig::if_online());
        let summary = cfa.call_summary(&program);
        // Three applications: (apply id), ((apply id) 0), (f x).
        assert_eq!(summary.len(), 3);
        for (app, n) in summary {
            assert_eq!(n, 1, "call site {} resolves uniquely", program.term.display(app));
        }
    }

    #[test]
    fn letrec_supports_self_reference() {
        let src = r"letrec loop = \n. if0 n then 0 else loop (n + 1) in loop 5";
        let program = parse(src).unwrap();
        let mut cfa = analyze(&program, SolverConfig::if_online());
        // The recursive call site sees exactly the loop lambda.
        let apps: Vec<ExprId> = program
            .term
            .ids()
            .filter(|&id| matches!(program.term.get(id), Expr::App(..)))
            .collect();
        for app in apps {
            let callees = cfa.callees_of(&program, app);
            assert_eq!(callees.len(), 1, "{}", program.term.display(app));
        }
    }

    #[test]
    fn all_solver_configurations_agree() {
        let src = r"letrec even = \n. if0 n then (\t. t) else odd (n + 1)
                    in letrec odd = \n. if0 n then (\f. f) else even (n + 1)
                    in (even 4) (odd 3)";
        let reference = values(src, SolverConfig::sf_plain());
        for config in [
            SolverConfig::if_plain(),
            SolverConfig::sf_online(),
            SolverConfig::if_online(),
        ] {
            assert_eq!(values(src, config), reference, "{config:?}");
        }
    }

    #[test]
    fn unbound_variables_flow_nothing() {
        let v = values("mystery", SolverConfig::if_online());
        assert!(v.is_empty());
    }
}
