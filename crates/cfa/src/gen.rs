//! Synthetic functional programs for the closure-analysis benchmarks.
//!
//! The generator emits layered groups of recursive functions that pass each
//! other higher-order combinators — the "large sets of mutually recursive
//! functions" shape that \[MW97\] reported as a performance cliff and that the
//! paper's future-work section earmarks for online cycle elimination.

use crate::ast::{Expr, ExprId, Program, Term};
use bane_util::SplitMix64;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct CfaGenConfig {
    /// PRNG seed.
    pub seed: u64,
    /// Number of `letrec` function layers.
    pub layers: usize,
    /// Functions per layer.
    pub per_layer: usize,
    /// Call sites per function body.
    pub calls_per_fn: usize,
    /// Probability that a call argument is a function rather than a scalar —
    /// the higher-order "mixing" density. Past ~0.7 the closure sets (and
    /// the constraint-graph cycles) grow superlinearly.
    pub fn_arg_prob: f64,
}

impl Default for CfaGenConfig {
    fn default() -> Self {
        CfaGenConfig { seed: 7, layers: 10, per_layer: 6, calls_per_fn: 4, fn_arg_prob: 0.5 }
    }
}

impl CfaGenConfig {
    /// Scales the default shape to roughly `size` expression nodes.
    pub fn sized(size: usize, seed: u64) -> Self {
        let per_layer = 6;
        let calls_per_fn = 4;
        // Each function contributes ~3 + 2·calls nodes.
        let per_fn = 3 + 2 * calls_per_fn;
        let layers = (size / (per_layer * per_fn)).max(1);
        CfaGenConfig { seed, layers, per_layer, calls_per_fn, fn_arg_prob: 0.5 }
    }
}

/// Generates a program per `config`.
pub fn generate(config: &CfaGenConfig) -> Program {
    let mut rng = SplitMix64::new(config.seed);
    let mut term = Term::new();

    // Textual structure:
    //   letrec f_0 = B_0 in letrec f_1 = B_1 in … in <root>
    // so B_i may reference f_0 … f_i (letrec puts f_i in its own scope).
    // Every function is a combinator `\g. (g g) + Σ (callee argument)` with
    // callees and arguments drawn from {g, earlier functions} — parameters
    // get applied and functions travel as arguments, so closure sets mix
    // across call sites, and the letrec back-references close cycles.
    let total = config.layers * config.per_layer;
    let names: Vec<String> = (0..total)
        .map(|i| format!("f{}_{}", i / config.per_layer, i % config.per_layer))
        .collect();

    let pick_in_scope = |rng: &mut SplitMix64, term: &mut Term, i: usize| -> ExprId {
        match rng.next_below(3) {
            0 => term.alloc(Expr::Var("g".to_string())),
            1 => term.alloc(Expr::Var(names[i].clone())),
            _ => {
                let window = 2 * config.per_layer;
                let back = (rng.next_below(window as u64) as usize).min(i);
                term.alloc(Expr::Var(names[i - back].clone()))
            }
        }
    };

    // Root (innermost) body: seed the flows by applying a sample of
    // functions to each other.
    let mut body: ExprId = term.alloc(Expr::Int(0));
    for _ in 0..16.min(total) {
        let a = rng.next_below(total as u64) as usize;
        let b = rng.next_below(total as u64) as usize;
        let fa = term.alloc(Expr::Var(names[a].clone()));
        let fb = term.alloc(Expr::Var(names[b].clone()));
        let call = term.alloc(Expr::App(fa, fb));
        body = term.alloc(Expr::Add(body, call));
    }

    // Wrap the letrecs inside-out: highest textual index first.
    for i in (0..total).rev() {
        // (g 0): the function parameter is applied — every lambda that ever
        // reaches g becomes callable here.
        let g1 = term.alloc(Expr::Var("g".to_string()));
        let zero = term.alloc(Expr::Int(0));
        let mut acc = term.alloc(Expr::App(g1, zero));
        for _ in 0..config.calls_per_fn {
            let callee = pick_in_scope(&mut rng, &mut term, i);
            // Scalar or function argument, by the mixing density.
            let arg = if rng.next_bool(1.0 - config.fn_arg_prob) {
                term.alloc(Expr::Int(1))
            } else {
                pick_in_scope(&mut rng, &mut term, i)
            };
            let call = term.alloc(Expr::App(callee, arg));
            acc = term.alloc(Expr::Add(acc, call));
        }
        let lam = term.alloc(Expr::Lam("g".to_string(), acc));
        body = term.alloc(Expr::LetRec(names[i].clone(), lam, body));
    }
    Program { term, root: body }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use bane_core::prelude::*;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let a = generate(&CfaGenConfig::sized(3_000, 1));
        let b = generate(&CfaGenConfig::sized(3_000, 1));
        assert_eq!(a, b);
        assert!(a.size() > 1_500, "size {}", a.size());
    }

    #[test]
    fn generated_programs_have_cycles_and_agree() {
        let program = generate(&CfaGenConfig::sized(2_000, 5));
        let mut online = analyze(&program, SolverConfig::if_online());
        assert!(
            online.solver.stats().vars_eliminated > 0,
            "letrec groups should produce collapsible cycles"
        );
        let plain = analyze(&program, SolverConfig::sf_plain());
        // Same least solution sizes at the root.
        let mut plain = plain;
        let a = online.values_of(program.root);
        let b = plain.values_of(program.root);
        assert_eq!(a, b);
    }
}
