//! Parser for the functional language.
//!
//! Grammar (application binds tightest, by juxtaposition, left-associative;
//! `+` next; `\`, `let`, `letrec`, `if0` extend to the right):
//!
//! ```text
//! expr   ::= '\' ident '.' expr
//!          | 'let' ident '=' expr 'in' expr
//!          | 'letrec' ident '=' expr 'in' expr
//!          | 'if0' expr 'then' expr 'else' expr
//!          | add
//! add    ::= app ('+' app)*
//! app    ::= atom atom*
//! atom   ::= ident | int | '(' expr ')'
//! ```

use crate::ast::{Expr, ExprId, Program, Term};
use std::fmt;

/// A parse error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the source.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Lambda,
    Dot,
    LParen,
    RParen,
    Plus,
    Assign,
    Let,
    LetRec,
    In,
    If0,
    Then,
    Else,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '\\' => {
                out.push((Tok::Lambda, i));
                i += 1;
            }
            '.' => {
                out.push((Tok::Dot, i));
                i += 1;
            }
            '(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            '+' => {
                out.push((Tok::Plus, i));
                i += 1;
            }
            '=' => {
                out.push((Tok::Assign, i));
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = src[start..i].parse().map_err(|e| ParseError {
                    message: format!("bad integer: {e}"),
                    at: start,
                })?;
                out.push((Tok::Int(n), start));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "let" => Tok::Let,
                    "letrec" => Tok::LetRec,
                    "in" => Tok::In,
                    "if0" => Tok::If0,
                    "then" => Tok::Then,
                    "else" => Tok::Else,
                    "fn" => Tok::Lambda,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push((tok, start));
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{other}`"),
                    at: i,
                })
            }
        }
    }
    Ok(out)
}

/// Parses a program.
///
/// # Errors
///
/// Returns a [`ParseError`] on the first problem.
///
/// # Examples
///
/// ```
/// use bane_cfa::parse::parse;
///
/// let p = parse(r"let id = \x. x in id id")?;
/// assert!(p.size() >= 5);
/// # Ok::<(), bane_cfa::parse::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0, term: Term::new() };
    let root = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError {
            message: "trailing input".into(),
            at: p.tokens[p.pos].1,
        });
    }
    Ok(Program { term: p.term, root })
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
    term: Term,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn at(&self) -> usize {
        self.tokens.get(self.pos).map(|&(_, at)| at).unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError { message: format!("expected {tok:?}"), at: self.at() })
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(ParseError { message: "expected identifier".into(), at: self.at() }),
        }
    }

    fn expr(&mut self) -> Result<ExprId, ParseError> {
        match self.peek() {
            Some(Tok::Lambda) => {
                self.bump();
                let x = self.ident()?;
                self.expect(Tok::Dot)?;
                let body = self.expr()?;
                Ok(self.term.alloc(Expr::Lam(x, body)))
            }
            Some(Tok::Let) | Some(Tok::LetRec) => {
                let rec = self.bump() == Some(Tok::LetRec);
                let x = self.ident()?;
                self.expect(Tok::Assign)?;
                let bound = self.expr()?;
                self.expect(Tok::In)?;
                let body = self.expr()?;
                Ok(self.term.alloc(if rec {
                    Expr::LetRec(x, bound, body)
                } else {
                    Expr::Let(x, bound, body)
                }))
            }
            Some(Tok::If0) => {
                self.bump();
                let c = self.expr()?;
                self.expect(Tok::Then)?;
                let t = self.expr()?;
                self.expect(Tok::Else)?;
                let e = self.expr()?;
                Ok(self.term.alloc(Expr::If0(c, t, e)))
            }
            _ => self.add(),
        }
    }

    fn add(&mut self) -> Result<ExprId, ParseError> {
        let mut lhs = self.app()?;
        while self.peek() == Some(&Tok::Plus) {
            self.bump();
            let rhs = self.app()?;
            lhs = self.term.alloc(Expr::Add(lhs, rhs));
        }
        Ok(lhs)
    }

    fn app(&mut self) -> Result<ExprId, ParseError> {
        let mut f = self.atom()?;
        while matches!(
            self.peek(),
            Some(Tok::Ident(_)) | Some(Tok::Int(_)) | Some(Tok::LParen) | Some(Tok::Lambda)
        ) {
            // Lambdas as arguments must be parenthesized in most MLs; we
            // allow a trailing bare lambda for convenience.
            let a = self.atom()?;
            f = self.term.alloc(Expr::App(f, a));
        }
        Ok(f)
    }

    fn atom(&mut self) -> Result<ExprId, ParseError> {
        match self.bump() {
            Some(Tok::Ident(x)) => Ok(self.term.alloc(Expr::Var(x))),
            Some(Tok::Int(n)) => Ok(self.term.alloc(Expr::Int(n))),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Lambda) => {
                let x = self.ident()?;
                self.expect(Tok::Dot)?;
                let body = self.expr()?;
                Ok(self.term.alloc(Expr::Lam(x, body)))
            }
            _ => Err(ParseError { message: "expected expression".into(), at: self.at() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_identity_application() {
        let p = parse(r"let id = \x. x in id id").unwrap();
        assert!(matches!(p.term.get(p.root), Expr::Let(..)));
        assert_eq!(p.term.display(p.root), "let id = \\x. x in (id id)");
    }

    #[test]
    fn application_is_left_associative() {
        let p = parse("f a b").unwrap();
        let Expr::App(fa, _) = p.term.get(p.root) else { panic!() };
        assert!(matches!(p.term.get(*fa), Expr::App(..)));
    }

    #[test]
    fn plus_binds_looser_than_application() {
        let p = parse("f a + g b").unwrap();
        assert!(matches!(p.term.get(p.root), Expr::Add(..)));
    }

    #[test]
    fn letrec_and_if0() {
        let p = parse(r"letrec f = \n. if0 n then 0 else f (n + 1) in f 3").unwrap();
        assert!(matches!(p.term.get(p.root), Expr::LetRec(..)));
    }

    #[test]
    fn comments_and_fn_keyword() {
        let p = parse("# a comment\nfn x. x").unwrap();
        assert!(matches!(p.term.get(p.root), Expr::Lam(..)));
    }

    #[test]
    fn errors_report_position() {
        let err = parse("let = 3 in x").unwrap_err();
        assert!(err.to_string().contains("identifier"));
        assert!(parse("(x").is_err());
        assert!(parse("x )").is_err());
        assert!(parse("?").is_err());
    }
}
