//! Abstract syntax of the small functional language.
//!
//! ```text
//! e ::= x | n | \x. e | e₁ e₂ | e₁ + e₂
//!     | let x = e₁ in e₂ | letrec f = e₁ in e₂
//!     | if0 e₁ then e₂ else e₃
//! ```
//!
//! `letrec` makes `f` visible inside its own definition — that is where the
//! closure-analysis constraint graph grows cycles, the phenomenon the
//! paper's future-work section wants online elimination measured against
//! (\[MW97\] reported poor performance on "large sets of mutually recursive
//! functions").

use bane_util::newtype_index;

newtype_index! {
    /// Identifies an expression node (also the label of its 0-CFA cache
    /// variable).
    pub struct ExprId("e");
}

/// An expression node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A variable reference.
    Var(String),
    /// An integer literal.
    Int(i64),
    /// `\x. body`.
    Lam(String, ExprId),
    /// `f a` (application by juxtaposition).
    App(ExprId, ExprId),
    /// `a + b` (a primitive; no closure flow).
    Add(ExprId, ExprId),
    /// `let x = bound in body`.
    Let(String, ExprId, ExprId),
    /// `letrec f = bound in body` (`f` scopes over `bound`).
    LetRec(String, ExprId, ExprId),
    /// `if0 cond then t else e` — values of both branches merge.
    If0(ExprId, ExprId, ExprId),
}

/// An arena-allocated program: expressions by id, plus the root.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Term {
    nodes: Vec<Expr>,
}

impl Term {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a node.
    pub fn alloc(&mut self, e: Expr) -> ExprId {
        let id = ExprId::new(self.nodes.len());
        self.nodes.push(e);
        id
    }

    /// The node for `id`.
    pub fn get(&self, id: ExprId) -> &Expr {
        &self.nodes[id.raw() as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All ids, in allocation order.
    pub fn ids(&self) -> impl Iterator<Item = ExprId> + 'static {
        (0..self.nodes.len()).map(ExprId::new)
    }

    /// Renders `id` back to source syntax.
    pub fn display(&self, id: ExprId) -> String {
        match self.get(id) {
            Expr::Var(x) => x.clone(),
            Expr::Int(n) => n.to_string(),
            Expr::Lam(x, b) => format!("\\{x}. {}", self.display(*b)),
            Expr::App(f, a) => {
                format!("({} {})", self.display(*f), self.display(*a))
            }
            Expr::Add(a, b) => format!("({} + {})", self.display(*a), self.display(*b)),
            Expr::Let(x, v, b) => {
                format!("let {x} = {} in {}", self.display(*v), self.display(*b))
            }
            Expr::LetRec(x, v, b) => {
                format!("letrec {x} = {} in {}", self.display(*v), self.display(*b))
            }
            Expr::If0(c, t, e) => format!(
                "if0 {} then {} else {}",
                self.display(*c),
                self.display(*t),
                self.display(*e)
            ),
        }
    }
}

/// A parsed program: the arena plus the root expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// The expression arena.
    pub term: Term,
    /// The root expression.
    pub root: ExprId,
}

impl Program {
    /// Total expression nodes (the CFA analogue of the paper's AST nodes).
    pub fn size(&self) -> usize {
        self.term.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_round_trips() {
        let mut t = Term::new();
        let x = t.alloc(Expr::Var("x".into()));
        let lam = t.alloc(Expr::Lam("x".into(), x));
        let app = t.alloc(Expr::App(lam, lam));
        assert_eq!(t.len(), 3);
        assert_eq!(t.display(app), "(\\x. x \\x. x)");
        assert!(matches!(t.get(lam), Expr::Lam(..)));
        assert_eq!(t.ids().count(), 3);
    }
}
