//! Facade crate re-exporting the full `bane` workspace API.
//!
//! `bane` reproduces *Partial Online Cycle Elimination in Inclusion
//! Constraint Graphs* (Fähndrich, Foster, Su, Aiken — PLDI 1998): a generic
//! inclusion-constraint solver with standard/inductive graph forms and
//! partial online cycle elimination, applied to Andersen's points-to
//! analysis for C.
//!
//! See the individual crates for details:
//! - [`core`] (`bane-core`): the inclusion-constraint solver with partial
//!   online cycle elimination (the paper's contribution).
//! - [`cfront`] (`bane-cfront`): the C-subset frontend.
//! - [`points_to`] (`bane-points-to`): Andersen's and Steensgaard's analyses.
//! - [`synth`] (`bane-synth`): the synthetic benchmark-suite generator.
//! - [`model`] (`bane-model`): the analytical model of Section 5.
//! - [`cfa`] (`bane-cfa`): closure analysis, the paper's stated future work.
//! - [`par`] (`bane-par`): the deterministic parallel execution engine.
//! - [`snap`] (`bane-snap`): the on-disk snapshot format and the read-only
//!   alias-query serving layer (docs/SNAPSHOT_FORMAT.md, docs/SERVING.md).
//! - [`serve`] (`bane-serve`): the long-lived incremental analysis session —
//!   `Delta` batches, dirty-set re-solve, and the framed request/response
//!   transport (docs/INCREMENTAL.md).
//! - [`obs`] (`bane-obs`): the observability layer (phase timers, unified
//!   counters; docs/OBSERVABILITY.md).
//!
//! # Examples
//!
//! ```
//! use bane::core::prelude::*;
//!
//! let mut solver = Solver::new(SolverConfig::if_online());
//! let (x, y) = (solver.fresh_var(), solver.fresh_var());
//! solver.add(x, y);
//! solver.add(y, x);
//! solver.solve();
//! assert_eq!(solver.find(x), solver.find(y));
//! ```

pub use bane_cfa as cfa;
pub use bane_cfront as cfront;
pub use bane_core as core;
pub use bane_model as model;
pub use bane_obs as obs;
pub use bane_par as par;
pub use bane_points_to as points_to;
pub use bane_serve as serve;
pub use bane_snap as snap;
pub use bane_synth as synth;
pub use bane_util as util;
