//! End-to-end integration tests spanning the whole workspace:
//! synthesize → pretty-print → re-parse → analyze under every experiment
//! configuration → identical points-to solutions.

use bane::cfront::parse::parse;
use bane::cfront::pretty::program_to_c;
use bane::core::prelude::*;
use bane::points_to::{andersen, steensgaard, LocId};
use bane::synth::gen::{generate, GenConfig};
use std::collections::BTreeSet;

/// Points-to sets by location id (ids are stable across configurations
/// because constraint generation is deterministic).
fn points_to_sets(
    program: &bane::cfront::ast::Program,
    config: SolverConfig,
    partition: Option<&Partition>,
) -> Vec<BTreeSet<LocId>> {
    let mut analysis = match partition {
        Some(p) => andersen::analyze_with_oracle(program, config, p.clone()),
        None => andersen::analyze(program, config),
    };
    let graph = analysis.points_to();
    (0..analysis.locs.len())
        .map(|i| graph.targets(LocId::new(i)).iter().copied().collect())
        .collect()
}

#[test]
fn synthesized_program_round_trips_through_the_frontend() {
    for seed in [1u64, 2, 3] {
        let program = generate(&GenConfig::sized(2_000, seed));
        let source = program_to_c(&program);
        let reparsed = parse(&source).expect("pretty-printed output parses");
        assert_eq!(reparsed, program, "seed {seed}: parse∘print is identity");
    }
}

#[test]
fn all_six_experiments_compute_the_same_points_to_graph() {
    let program = generate(&GenConfig::sized(1_500, 42));

    // Reference + oracle partition from IF-Online.
    let mut first = andersen::analyze(&program, SolverConfig::if_online());
    let reference: Vec<BTreeSet<LocId>> = {
        let graph = first.points_to();
        (0..first.locs.len())
            .map(|i| graph.targets(LocId::new(i)).iter().copied().collect())
            .collect()
    };
    let partition = first.solver.scc_partition();

    let runs: Vec<(&str, SolverConfig, bool)> = vec![
        ("SF-Plain", SolverConfig::sf_plain(), false),
        ("IF-Plain", SolverConfig::if_plain(), false),
        ("SF-Online", SolverConfig::sf_online(), false),
        ("SF-Oracle", SolverConfig::sf_plain(), true),
        ("IF-Oracle", SolverConfig::if_plain(), true),
    ];
    for (name, config, oracle) in runs {
        let got = points_to_sets(&program, config, oracle.then_some(&partition));
        assert_eq!(got, reference, "{name} disagrees with IF-Online");
    }
}

#[test]
fn points_to_is_stable_across_variable_orders() {
    let program = generate(&GenConfig::sized(1_200, 9));
    let reference = points_to_sets(&program, SolverConfig::if_online(), None);
    for seed in [3u64, 17, 2024] {
        let config = SolverConfig::if_online().with_order(OrderPolicy::Random { seed });
        assert_eq!(points_to_sets(&program, config, None), reference, "seed {seed}");
    }
    let config = SolverConfig::if_online().with_order(OrderPolicy::Creation);
    assert_eq!(points_to_sets(&program, config, None), reference, "creation order");
}

#[test]
fn oracle_runs_collapse_nothing_and_alias_everything() {
    let program = generate(&GenConfig::sized(1_500, 42));
    let first = andersen::analyze(&program, SolverConfig::if_online());
    let partition = first.solver.scc_partition();
    let collapsible = partition.eliminated();
    assert!(collapsible > 0, "benchmark should contain cycles");

    for config in [SolverConfig::sf_plain(), SolverConfig::if_plain()] {
        let analysis = andersen::analyze_with_oracle(&program, config, partition.clone());
        assert_eq!(analysis.solver.stats().oracle_aliased as usize, collapsible);
        assert_eq!(analysis.solver.stats().vars_eliminated, 0);
        assert_eq!(analysis.solver.var_var_scc_stats().vars_in_cycles, 0, "acyclic");
    }
}

#[test]
fn online_elimination_reduces_work_on_cyclic_benchmarks() {
    let program = generate(&GenConfig::sized(4_000, 7));

    let run = |config: SolverConfig| {
        let analysis = andersen::analyze(&program, config);
        (*analysis.solver.stats(), analysis.solver.census().total_edges())
    };
    let (sf_plain, sf_plain_edges) = run(SolverConfig::sf_plain());
    let (sf_online, _) = run(SolverConfig::sf_online());
    let (if_online, if_online_edges) = run(SolverConfig::if_online());

    assert!(sf_online.work < sf_plain.work, "online elimination reduces SF work");
    assert!(if_online.work < sf_plain.work, "IF-Online beats SF-Plain on work");
    assert!(if_online.vars_eliminated > sf_online.vars_eliminated, "IF detects more");
    assert!(if_online_edges < sf_plain_edges, "collapsed graphs are smaller");
}

#[test]
fn steensgaard_over_approximates_andersen() {
    let program = generate(&GenConfig::sized(1_000, 5));
    let mut analysis = andersen::analyze(&program, SolverConfig::if_online());
    let a = analysis.points_to();
    let s = steensgaard::analyze(&program);
    // Same location table order for the shared prefix (both walk the AST the
    // same way), so compare totals rather than per-id.
    assert!(
        s.total_edges() >= a.total_edges(),
        "unification can only lose precision: {} < {}",
        s.total_edges(),
        a.total_edges()
    );
}

#[test]
fn suite_entries_are_deterministic_and_scaled() {
    let e = &bane::synth::PAPER_SUITE[5];
    let a = bane::synth::suite_program(e, 0.5);
    let b = bane::synth::suite_program(e, 0.5);
    assert_eq!(a, b);
    let full = bane::synth::suite_program(e, 1.0);
    assert!(full.ast_nodes() > a.ast_nodes());
}
