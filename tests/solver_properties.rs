//! Property-based integration tests: random C-subset programs through the
//! whole pipeline, asserting the semantic equivalences the paper relies on.

use bane::core::prelude::*;
use bane::points_to::{andersen, LocId};
use bane::synth::gen::{generate, GenConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn sets(
    program: &bane::cfront::ast::Program,
    config: SolverConfig,
) -> Vec<BTreeSet<LocId>> {
    let mut analysis = andersen::analyze(program, config);
    let graph = analysis.points_to();
    (0..analysis.locs.len())
        .map(|i| graph.targets(LocId::new(i)).iter().copied().collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever program the generator produces, all four non-oracle
    /// configurations agree on the points-to graph.
    #[test]
    fn configurations_agree_on_generated_programs(
        seed in 0u64..1_000,
        target in 300usize..1_500,
    ) {
        let program = generate(&GenConfig::sized(target, seed));
        let reference = sets(&program, SolverConfig::if_online());
        for config in [
            SolverConfig::sf_plain(),
            SolverConfig::if_plain(),
            SolverConfig::sf_online(),
        ] {
            prop_assert_eq!(&sets(&program, config), &reference);
        }
    }

    /// Work accounting stays consistent on arbitrary generated programs.
    #[test]
    fn work_accounting_invariants(seed in 0u64..1_000) {
        let program = generate(&GenConfig::sized(800, seed));
        for config in [SolverConfig::sf_online(), SolverConfig::if_online()] {
            let analysis = andersen::analyze(&program, config);
            let stats = analysis.solver.stats();
            prop_assert!(stats.redundant <= stats.work);
            prop_assert!(
                (analysis.solver.census().total_edges() as u64) <= stats.new_edges()
            );
            // Every collapse eliminates at least one variable and every
            // eliminated variable came from some collapse.
            prop_assert!(stats.vars_eliminated >= stats.cycles_collapsed);
            prop_assert_eq!(
                stats.search.cycles_found,
                stats.cycles_collapsed
            );
        }
    }

    /// The online detector never eliminates variables that are not in a
    /// genuine SCC (soundness of collapsing).
    #[test]
    fn collapses_are_sound(seed in 0u64..1_000) {
        let program = generate(&GenConfig::sized(700, seed));
        // Ground truth from a logged plain run (no elimination involved).
        let mut plain = Solver::new(SolverConfig::if_plain().with_log(true));
        andersen::generate(&program, &mut plain);
        plain.solve();
        let truth = plain.scc_partition();

        let mut online = Solver::new(SolverConfig::if_online());
        let (locs, _) = andersen::generate(&program, &mut online);
        online.solve();
        let _ = locs;
        // Any two creation indices merged online must be in the same true SCC.
        for &(a, b) in online.union_log() {
            prop_assert_eq!(
                truth.rep_of(a),
                truth.rep_of(b),
                "online merged {} and {} which are not equal in all solutions",
                a,
                b
            );
        }
    }
}
